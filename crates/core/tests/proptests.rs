//! Property tests for the core protocol building blocks, plus a
//! state-machine fuzzer that drives a cluster of `OcptProcess` instances
//! through randomly ordered deliveries (no simulator involved) and checks
//! the protocol's own invariants at every step.

use ocpt_core::{
    decode_envelope, encode_envelope, AppPayload, Direction, Envelope, LogEntry, MessageLog,
    OcptConfig, OcptProcess, Piggyback, Status, TentSet,
};
use ocpt_sim::{MsgId, ProcessId};
use proptest::prelude::*;

// ---------- TentSet algebra ----------

fn tentset_strategy(n: usize) -> impl Strategy<Value = TentSet> {
    prop::collection::vec(0..n as u32, 0..n).prop_map(move |ids| {
        let mut s = TentSet::empty(n);
        for i in ids {
            s.insert(ProcessId(i));
        }
        s
    })
}

proptest! {
    #[test]
    fn tentset_merge_is_union_commutative_idempotent(
        n in 1usize..200,
        seed_a in prop::collection::vec(0u32..200, 0..32),
        seed_b in prop::collection::vec(0u32..200, 0..32),
    ) {
        let mk = |ids: &[u32]| {
            let mut s = TentSet::empty(n);
            for &i in ids {
                if (i as usize) < n {
                    s.insert(ProcessId(i));
                }
            }
            s
        };
        let a = mk(&seed_a);
        let b = mk(&seed_b);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba, "commutative");
        let mut aa = ab.clone();
        aa.merge(&ab);
        prop_assert_eq!(&aa, &ab, "idempotent");
        // Union contains both operands.
        for p in a.iter().chain(b.iter()) {
            prop_assert!(ab.contains(p));
        }
        // Cardinality sane.
        prop_assert!(ab.len() >= a.len().max(b.len()));
        prop_assert!(ab.len() <= n);
    }

    #[test]
    fn tentset_bytes_round_trip(n in 1usize..300, s in (1usize..300).prop_flat_map(tentset_strategy)) {
        // (Generator may produce a set over a different n; rebuild over n.)
        let mut set = TentSet::empty(n);
        for p in s.iter() {
            if p.index() < n {
                set.insert(p);
            }
        }
        let d = TentSet::from_bytes(n, &set.to_bytes()).expect("round trip");
        prop_assert_eq!(d, set);
    }

    #[test]
    fn first_absent_above_is_correct(n in 2usize..100, s in (2usize..100).prop_flat_map(tentset_strategy), from in 0u32..100) {
        let mut set = TentSet::empty(n);
        for p in s.iter() {
            if p.index() < n {
                set.insert(p);
            }
        }
        let from = ProcessId(from % n as u32);
        match set.first_absent_above(from) {
            Some(q) => {
                prop_assert!(q > from);
                prop_assert!(!set.contains(q));
                for k in (from.0 + 1)..q.0 {
                    prop_assert!(set.contains(ProcessId(k)), "skipped a hole");
                }
            }
            None => {
                for k in (from.0 + 1)..n as u32 {
                    prop_assert!(set.contains(ProcessId(k)));
                }
            }
        }
    }

    // ---------- Wire codec ----------

    #[test]
    fn envelope_codec_round_trips(
        n in 2usize..200,
        csn in any::<u64>(),
        tentative in any::<bool>(),
        payload_id in any::<u64>(),
        payload_len in 0u32..4096,
        members in prop::collection::vec(0u32..200, 0..16),
    ) {
        let mut ts = TentSet::empty(n);
        for m in members {
            if (m as usize) < n {
                ts.insert(ProcessId(m));
            }
        }
        let env = Envelope::App {
            pb: Piggyback::new(
                csn,
                if tentative { Status::Tentative } else { Status::Normal },
                ts,
            ),
            payload: AppPayload { id: payload_id, len: payload_len },
        };
        let enc = encode_envelope(&env, n);
        prop_assert_eq!(enc.len() as u64, env.wire_bytes(n));
        let (dec, dn) = decode_envelope(enc).expect("wire round-trip must decode");
        prop_assert_eq!(dec, env);
        prop_assert_eq!(dn, n);
    }

    #[test]
    fn envelope_decoder_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_envelope(bytes::Bytes::from(data));
    }

    #[test]
    fn message_log_round_trips(entries in prop::collection::vec(
        (any::<bool>(), 0u32..64, any::<u64>(), any::<u64>(), 0u32..2048), 0..64)
    ) {
        let mut log = MessageLog::new();
        for (sent, peer, msg, pid, len) in entries {
            log.push(LogEntry::payload(if sent { Direction::Sent } else { Direction::Received }, ProcessId(peer), MsgId(msg), AppPayload { id: pid, len }));
        }
        let dec = MessageLog::decode(log.encode()).expect("round trip");
        prop_assert_eq!(dec, log);
    }

    #[test]
    fn log_decoder_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = MessageLog::decode(bytes::Bytes::from(data));
    }
}

// ---------- Adaptive wire encodings (differential) ----------

/// Universes on both sides of the u16→u32 id-width boundary, paired with
/// sets built from a handful of intervals plus scattered singletons — the
/// structure that lets each of the three representations win somewhere.
fn universe_and_set() -> impl Strategy<Value = (usize, TentSet)> {
    prop_oneof![17usize..1_000, 65_530usize..66_000].prop_flat_map(|n| {
        let runs = prop::collection::vec((0..n as u32, 1u32..64), 0..6);
        let singles = prop::collection::vec(0..n as u32, 0..12);
        let set = (runs, singles).prop_map(move |(runs, singles)| {
            let mut s = TentSet::empty(n);
            for (start, len) in runs {
                for i in start..(start + len).min(n as u32) {
                    s.insert(ProcessId(i));
                }
            }
            for i in singles {
                s.insert(ProcessId(i));
            }
            s
        });
        (Just(n), set)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// Differential: the sparse and run encodings must decode to exactly
    /// the set the dense bitmap (the reference representation) decodes to,
    /// and the adaptive pick must be the smallest of the three.
    #[test]
    fn forced_encodings_agree_with_dense_reference(ns in universe_and_set()) {
        let (n, s) = ns;
        let dense = s.encode_dense();
        let sparse = s.encode_sparse();
        let runs = s.encode_runs();
        let reference = TentSet::from_bytes(n, &dense).expect("dense decodes");
        prop_assert_eq!(&reference, &s);
        for enc in [&sparse, &runs] {
            let d = TentSet::from_bytes(n, enc).expect("forced encoding decodes");
            prop_assert_eq!(&d, &reference);
        }
        // The adaptive choice self-reports its size and is never beaten.
        let adaptive = s.to_bytes();
        prop_assert_eq!(adaptive.len(), s.wire_bytes());
        prop_assert!(adaptive.len() <= dense.len().min(sparse.len()).min(runs.len()));
        // `from_wire` consumes exactly the encoded bytes, even with junk
        // appended (the envelope decoder relies on this).
        let mut framed = adaptive.clone();
        framed.extend_from_slice(&[0xAB; 7]);
        let (d, used) = TentSet::from_wire(n, &framed).expect("framed decode");
        prop_assert_eq!(used, adaptive.len());
        prop_assert_eq!(d, s);
    }

    /// Merging two sets that each took a wire round-trip gives the same
    /// union as merging in memory — the encodings are lossless under the
    /// protocol's one algebraic operation.
    #[test]
    fn merge_commutes_with_wire_round_trip(
        na in universe_and_set(),
        ids in prop::collection::vec(any::<u32>(), 0..24),
    ) {
        let (n, a) = na;
        let mut b = TentSet::empty(n);
        for i in ids {
            b.insert(ProcessId(i % n as u32));
        }
        let mut in_memory = a.clone();
        in_memory.merge(&b);
        let mut via_wire = TentSet::from_bytes(n, &a.to_bytes()).expect("a decodes");
        via_wire.merge(&TentSet::from_bytes(n, &b.to_bytes()).expect("b decodes"));
        prop_assert_eq!(via_wire, in_memory);
    }

    /// An unknown tag byte or a truncated body is rejected, never
    /// misinterpreted.
    #[test]
    fn corrupted_tag_and_truncation_rejected(
        ns in universe_and_set(),
        bad_tag in 3u8..=255,
    ) {
        let (n, s) = ns;
        let good = s.to_bytes();
        let mut corrupted = good.clone();
        corrupted[0] = bad_tag;
        prop_assert!(TentSet::from_bytes(n, &corrupted).is_none(), "unknown tag accepted");
        prop_assert!(
            TentSet::from_bytes(n, &good[..good.len() - 1]).is_none(),
            "truncated body accepted"
        );
    }
}

// ---------- State-machine fuzz ----------

/// A network-less random scheduler: messages sit in a bag; each step either
/// delivers a random in-flight message, makes a random process send to a
/// random peer, initiates a checkpoint at a random process, or fires a
/// pending timer. Invariants checked throughout:
///
/// * no handler returns a protocol error (the "impossible" paper sub-cases
///   stay impossible under arbitrary reordering);
/// * `csn` values stay within 1 of each other across processes that are
///   `Normal` (global checkpoints advance in lock-step);
/// * at quiescence with timers flushed, every process is `Normal` and all
///   share the same `csn` (Theorem 1 in miniature).
#[derive(Debug)]
enum Op {
    Deliver(usize),
    Send { from: u32, to_off: u32 },
    Initiate(u32),
    FireTimer(u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<prop::sample::Index>()).prop_map(|i| Op::Deliver(i.index(usize::MAX))),
        (any::<u32>(), any::<u32>()).prop_map(|(f, t)| Op::Send { from: f, to_off: t }),
        any::<u32>().prop_map(Op::Initiate),
        any::<u32>().prop_map(Op::FireTimer),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn random_schedules_never_reach_impossible_cases(
        n in 2usize..7,
        ops in prop::collection::vec(op_strategy(), 1..400),
    ) {
        let cfg = OcptConfig::default();
        let mut procs: Vec<OcptProcess> =
            (0..n).map(|i| OcptProcess::new(ProcessId(i as u32), n, cfg)).collect();
        // In-flight messages: (src, dst, msg_id, payload, piggyback).
        let mut flight: Vec<(ProcessId, ProcessId, MsgId, AppPayload, Piggyback)> = Vec::new();
        // Pending timers per process: the csn the timer guards.
        let mut timers: Vec<Option<u64>> = vec![None; n];
        let mut next_msg = 0u64;
        let mut out = Vec::new();

        // Control messages travel in their own bag so delivery can pick
        // either kind.
        let mut ctrl_flight: Vec<(ProcessId, ProcessId, ocpt_core::CtrlMsg)> = Vec::new();

        let exec = |actions: Vec<ocpt_core::Action>,
                        pid: usize,
                        ctrl_flight: &mut Vec<(ProcessId, ProcessId, ocpt_core::CtrlMsg)>,
                        timers: &mut Vec<Option<u64>>| {
            for a in actions {
                match a {
                    ocpt_core::Action::SendCtrl { dst, cm } => {
                        ctrl_flight.push((ProcessId(pid as u32), dst, cm));
                    }
                    ocpt_core::Action::SetTimer { csn } => timers[pid] = Some(csn),
                    ocpt_core::Action::CancelTimer => timers[pid] = None,
                    _ => {}
                }
            }
        };

        for op in &ops {
            match op {
                Op::Deliver(i) => {
                    let total = flight.len() + ctrl_flight.len();
                    if total == 0 {
                        continue;
                    }
                    let k = i % total;
                    if k < flight.len() {
                        let (src, dst, id, payload, pb) = flight.swap_remove(k);
                        let r = procs[dst.index()]
                            .on_app_receive(src, id, payload, &pb, &mut out);
                        prop_assert!(r.is_ok(), "app receive error: {:?}", r);
                        let actions: Vec<_> = std::mem::take(&mut out);
                        exec(actions, dst.index(), &mut ctrl_flight, &mut timers);
                    } else {
                        let (src, dst, cm) = ctrl_flight.swap_remove(k - flight.len());
                        let r = procs[dst.index()].on_ctrl_receive(src, cm, &mut out);
                        prop_assert!(r.is_ok(), "ctrl receive error: {:?}", r);
                        let actions: Vec<_> = std::mem::take(&mut out);
                        exec(actions, dst.index(), &mut ctrl_flight, &mut timers);
                    }
                }
                Op::Send { from, to_off } => {
                    let src = (*from as usize) % n;
                    let dst = (src + 1 + (*to_off as usize) % (n - 1)) % n;
                    let id = MsgId(next_msg);
                    next_msg += 1;
                    let payload = AppPayload { id: id.0, len: 64 };
                    let pb = procs[src].on_app_send(ProcessId(dst as u32), id, payload);
                    flight.push((ProcessId(src as u32), ProcessId(dst as u32), id, payload, pb));
                }
                Op::Initiate(p) => {
                    let pid = (*p as usize) % n;
                    procs[pid].initiate_checkpoint(&mut out);
                    let actions: Vec<_> = std::mem::take(&mut out);
                    exec(actions, pid, &mut ctrl_flight, &mut timers);
                }
                Op::FireTimer(p) => {
                    let pid = (*p as usize) % n;
                    if let Some(csn) = timers[pid].take() {
                        procs[pid].on_timer(csn, &mut out);
                        let actions: Vec<_> = std::mem::take(&mut out);
                        exec(actions, pid, &mut ctrl_flight, &mut timers);
                    }
                }
            }
            // Lock-step invariant: csn values never drift by more than 1.
            let min = procs.iter().map(|p| p.csn()).min().expect("nonempty process set");
            let max = procs.iter().map(|p| p.csn()).max().expect("nonempty process set");
            prop_assert!(max - min <= 1, "csn drift: {min}..{max}");
        }

        // Quiesce: deliver everything and fire all timers until stable.
        for _ in 0..10_000 {
            if let Some((src, dst, id, payload, pb)) = flight.pop() {
                let r = procs[dst.index()].on_app_receive(src, id, payload, &pb, &mut out);
                prop_assert!(r.is_ok());
                let actions: Vec<_> = std::mem::take(&mut out);
                exec(actions, dst.index(), &mut ctrl_flight, &mut timers);
            } else if let Some((src, dst, cm)) = ctrl_flight.pop() {
                let r = procs[dst.index()].on_ctrl_receive(src, cm, &mut out);
                prop_assert!(r.is_ok());
                let actions: Vec<_> = std::mem::take(&mut out);
                exec(actions, dst.index(), &mut ctrl_flight, &mut timers);
            } else if let Some(pid) = (0..n).find(|&i| timers[i].is_some()) {
                let csn = timers[pid].take().expect("timer armed before firing");
                procs[pid].on_timer(csn, &mut out);
                let actions: Vec<_> = std::mem::take(&mut out);
                exec(actions, pid, &mut ctrl_flight, &mut timers);
            } else {
                break;
            }
        }
        prop_assert!(flight.is_empty() && ctrl_flight.is_empty(), "did not quiesce");

        // Theorem 1 in miniature: everyone Normal at the same csn.
        for p in &procs {
            prop_assert_eq!(p.status(), Status::Normal, "{} stuck tentative", p.id());
        }
        let csn0 = procs[0].csn();
        for p in &procs {
            prop_assert_eq!(p.csn(), csn0, "csn disagreement at quiescence");
        }
    }
}
