//! # ocpt-core — optimistic checkpointing with selective message logging
//!
//! The primary contribution of Jiang & Manivannan (IPDPS 2007): a
//! quasi-synchronous checkpointing algorithm in which **every checkpoint
//! belongs to a consistent global checkpoint**, no process blocks, no
//! checkpoint is forced before processing a received message, and stable
//! storage writes are naturally staggered.
//!
//! A checkpoint is `C_{i,k} = CT_{i,k} ∪ logSet_{i,k}`: a *tentative*
//! state snapshot taken optimistically plus the log of every message sent
//! or received until the checkpoint is *finalized*. Knowledge of who has
//! taken a tentative checkpoint spreads via piggybacks `(csn, stat,
//! tentSet)` on application messages; a process finalizes when it learns
//! everyone has taken one (or that somebody already finalized). A
//! timer-driven `CK_BGN`/`CK_REQ`/`CK_END` control layer guarantees
//! convergence when application traffic is too sparse.
//!
//! ## Architecture
//!
//! [`OcptProcess`] is a **sans-io state machine**: handlers consume one
//! event (application send/receive, control message, timer) and append
//! [`Action`]s for the driver to execute. The same type runs on the
//! deterministic simulator (`ocpt-harness`) and on OS threads
//! (`ocpt-runtime`).
//!
//! ```
//! use ocpt_core::{Action, OcptConfig, OcptProcess};
//! use ocpt_sim::{MsgId, ProcessId};
//!
//! let mut p0 = OcptProcess::new(ProcessId(0), 2, OcptConfig::default());
//! let mut p1 = OcptProcess::new(ProcessId(1), 2, OcptConfig::default());
//! let mut out = Vec::new();
//!
//! // P0 initiates a consistent global checkpoint.
//! assert!(p0.initiate_checkpoint(&mut out));
//! // Its next message carries the news...
//! let payload = ocpt_core::AppPayload { id: 1, len: 64 };
//! let pb = p0.on_app_send(ProcessId(1), MsgId(0), payload);
//! out.clear();
//! // ...and P1, on receipt, takes its own tentative checkpoint; with
//! // N = 2 it immediately knows everyone has, so it finalizes.
//! p1.on_app_receive(ProcessId(0), MsgId(0), payload, &pb, &mut out).expect("accepted");
//! assert!(out.iter().any(|a| matches!(a, Action::Finalize { csn: 1, .. })));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod actions;
pub mod config;
pub mod control;
pub mod error;
pub mod log;
pub mod piggyback;
pub mod protocol;
pub mod recovery;
pub mod snapshot;
pub mod strategy;
pub mod types;
pub mod wire;

pub use actions::{Action, Outbox};
pub use config::{ControlTopology, FlushPolicy, OcptConfig, WritePolicy};
pub use error::ProtocolError;
pub use log::{Direction, EntryKind, LogEntry, MessageLog};
pub use piggyback::Piggyback;
pub use protocol::OcptProcess;
pub use recovery::{plan_recovery, replay, RecoveryError, RecoveryPlan};
pub use snapshot::AppSnapshot;
pub use strategy::{LogDecision, LogWindow, LoggingKind, LoggingStrategy, ReplayPlan};
pub use types::{Csn, Status, TentSet};
pub use wire::{
    decode_envelope, encode_envelope, AppPayload, CtrlKind, CtrlMsg, Envelope, Framed, WireError,
};
