//! Rollback recovery from durable checkpoints.
//!
//! On a failure, every process rolls back to the recovery line `S_k` (the
//! greatest sequence number durable on all processes; consistent by paper
//! Theorem 2). For each process the durable checkpoint is the pair
//! `CT_{i,k}` + `logSet_{i,k}`; the restored state is the tentative
//! snapshot with the log **replayed on top** — that reconstructs the state
//! exactly as of the finalization event `CFE_{i,k}`, which is the cut the
//! consistency proof is about.
//!
//! Logged *sent* messages are reported as re-send candidates: a message in
//! transit across the recovery line (sent inside, received outside) would
//! otherwise be lost; the sender-side log regenerates it. Only entries
//! that kept their payload ([`crate::EntryKind::Payload`]) qualify — a
//! determinant-only sender log (receiver-based strategy) cannot regenerate
//! anything, which is exactly the in-transit loss E10 measures.
//!
//! What to replay, what to re-send and what must be fetched from peers is
//! decided by [`ReplayPlan`] (see [`crate::strategy`]); this module wires
//! the plan to the durable blobs.

use bytes::Bytes;

use crate::log::{Direction, LogEntry, MessageLog};
use crate::snapshot::AppSnapshot;
use crate::strategy::ReplayPlan;
use crate::types::Csn;

/// Why recovery could not be planned from the given blobs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoveryError {
    /// The state blob did not decode as an [`AppSnapshot`].
    BadState,
    /// The log blob did not decode as a [`MessageLog`].
    BadLog,
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::BadState => write!(f, "corrupt checkpoint state blob"),
            RecoveryError::BadLog => write!(f, "corrupt checkpoint log blob"),
        }
    }
}

impl std::error::Error for RecoveryError {}

/// The outcome of planning one process's rollback.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryPlan {
    /// The sequence number rolled back to.
    pub csn: Csn,
    /// State after restoring `CT_{i,k}` and replaying `logSet_{i,k}` —
    /// i.e. the state as of `CFE_{i,k}`.
    pub restored: AppSnapshot,
    /// Received messages that were replayed (arrival order).
    pub replayed: Vec<LogEntry>,
    /// Sent messages available for regeneration of in-transit losses
    /// (payload-carrying entries only).
    pub resendable: Vec<LogEntry>,
    /// Received determinants whose payload bytes live in the sender's
    /// durable log: replayable in order, but a real deployment pays one
    /// fetch round-trip each (E10's replay-time model charges them).
    pub fetched: Vec<LogEntry>,
}

/// Replay a message log over a restored tentative snapshot, reproducing the
/// state at the finalization event. Events are applied in log order, which
/// is the order they originally happened (piecewise determinism). Only the
/// replay window is applied: a continuous-window log's earlier entries
/// predate `CT` and their effects are already inside the snapshot.
pub fn replay(mut snapshot: AppSnapshot, log: &MessageLog) -> AppSnapshot {
    for e in log.replay_entries() {
        match e.dir {
            Direction::Sent => snapshot.apply_send(e.payload),
            Direction::Received => snapshot.apply_recv(e.payload),
        }
    }
    snapshot
}

/// Plan recovery of one process from its durable blobs.
pub fn plan_recovery(
    csn: Csn,
    state_blob: Bytes,
    log_blob: Bytes,
) -> Result<RecoveryPlan, RecoveryError> {
    let snapshot = AppSnapshot::decode(state_blob).ok_or(RecoveryError::BadState)?;
    let log = MessageLog::decode(log_blob).ok_or(RecoveryError::BadLog)?;
    let restored = replay(snapshot, &log);
    let plan = ReplayPlan::for_log(&log);
    Ok(RecoveryPlan {
        csn,
        restored,
        replayed: plan.replay,
        resendable: plan.resend,
        fetched: plan.fetch,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogEntry;
    use crate::wire::AppPayload;
    use ocpt_sim::{MsgId, ProcessId};

    fn pl(id: u64) -> AppPayload {
        AppPayload { id, len: 16 }
    }

    #[test]
    fn replay_reproduces_live_state() {
        // Live execution: snapshot taken mid-stream, then more events.
        let mut live = AppSnapshot::initial(3, 1024);
        live.apply_recv(pl(1));
        let tentative = live; // CT taken here
        let mut log = MessageLog::new();
        // Events after CT, all logged.
        live.apply_send(pl(2));
        log.push(LogEntry::payload(Direction::Sent, ProcessId(1), MsgId(2), pl(2)));
        live.apply_recv(pl(3));
        log.push(LogEntry::payload(Direction::Received, ProcessId(2), MsgId(3), pl(3)));
        // Restored = CT + replay(log) must equal live state at CFE.
        let restored = replay(tentative, &log);
        assert_eq!(restored, live);
    }

    #[test]
    fn replay_divergence_detected() {
        let base = AppSnapshot::initial(3, 1024);
        let mut log_a = MessageLog::new();
        let mut log_b = MessageLog::new();
        log_a.push(LogEntry::payload(Direction::Received, ProcessId(1), MsgId(1), pl(1)));
        // Same event, different payload.
        log_b.push(LogEntry::payload(Direction::Received, ProcessId(1), MsgId(1), pl(9)));
        assert_ne!(replay(base, &log_a), replay(base, &log_b));
    }

    #[test]
    fn plan_recovery_round_trip() {
        let mut snap = AppSnapshot::initial(0, 64);
        snap.apply_internal(1);
        let mut log = MessageLog::new();
        log.push(LogEntry::payload(Direction::Sent, ProcessId(1), MsgId(10), pl(10)));
        log.push(LogEntry::payload(Direction::Received, ProcessId(1), MsgId(11), pl(11)));
        let plan = plan_recovery(4, snap.encode(), log.encode())
            .expect("recovery plan must build from valid blobs");
        assert_eq!(plan.csn, 4);
        assert_eq!(plan.replayed.len(), 1);
        assert_eq!(plan.resendable.len(), 1);
        assert_eq!(plan.restored, replay(snap, &log));
    }

    #[test]
    fn corrupt_blobs_rejected() {
        let snap = AppSnapshot::initial(0, 64);
        let log = MessageLog::new();
        assert_eq!(
            plan_recovery(1, Bytes::from_static(&[1, 2, 3]), log.encode()),
            Err(RecoveryError::BadState)
        );
        assert_eq!(
            plan_recovery(1, snap.encode(), Bytes::from_static(&[9])),
            Err(RecoveryError::BadLog)
        );
    }
}
