//! Protocol errors.
//!
//! The paper's case analysis (§3.4.3) contains sub-cases it proves cannot
//! arise — (2d), (3c), (4c) and their control-message analogues. We do not
//! silently ignore them: reaching one means either the proof's assumptions
//! were violated (lossy channel, corrupted state) or the implementation is
//! wrong, so the state machine surfaces a typed error and the property
//! tests assert these are never produced under the system model.

use ocpt_sim::ProcessId;

use crate::types::Csn;

/// An impossible-by-Theorem situation was observed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// Application message whose piggybacked `csn` is ahead by more than
    /// one (paper sub-cases (2d)/(4c)): the sender could only have
    /// finalized `csn_i + 1` after *we* took a tentative checkpoint with
    /// that number.
    AppCsnJump {
        /// Receiving process.
        at: ProcessId,
        /// Our sequence number.
        ours: Csn,
        /// The piggybacked sequence number.
        theirs: Csn,
        /// Which paper sub-case this violates.
        subcase: &'static str,
    },
    /// Application message from a `Normal`-status sender with `csn` ahead
    /// of ours (paper sub-case (3c) and the (1)-analogue): a process cannot
    /// finalize `csn` before we even take `csn`.
    FinalizedAhead {
        /// Receiving process.
        at: ProcessId,
        /// Our sequence number.
        ours: Csn,
        /// The piggybacked sequence number.
        theirs: Csn,
    },
    /// Control message more than one sequence number ahead.
    CtrlCsnJump {
        /// Receiving process.
        at: ProcessId,
        /// Our sequence number.
        ours: Csn,
        /// The control message's sequence number.
        theirs: Csn,
    },
    /// `CK_END` one ahead of us: `P_0` can only have finalized `csn + 1`
    /// after we took a tentative checkpoint `csn + 1`.
    CkEndAhead {
        /// Receiving process.
        at: ProcessId,
        /// Our sequence number.
        ours: Csn,
        /// The control message's sequence number.
        theirs: Csn,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::AppCsnJump { at, ours, theirs, subcase } => write!(
                f,
                "{at}: app message csn {theirs} jumps ahead of local csn {ours} (paper sub-case {subcase})"
            ),
            ProtocolError::FinalizedAhead { at, ours, theirs } => write!(
                f,
                "{at}: sender claims finalized csn {theirs} ahead of local csn {ours} (paper sub-case 3c)"
            ),
            ProtocolError::CtrlCsnJump { at, ours, theirs } => {
                write!(f, "{at}: control message csn {theirs} jumps ahead of local csn {ours}")
            }
            ProtocolError::CkEndAhead { at, ours, theirs } => {
                write!(f, "{at}: CK_END csn {theirs} ahead of local csn {ours}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_subcase() {
        let e = ProtocolError::AppCsnJump { at: ProcessId(1), ours: 2, theirs: 5, subcase: "2d" };
        let s = e.to_string();
        assert!(s.contains("2d") && s.contains("P1"));
    }

    #[test]
    fn errors_are_comparable() {
        let a = ProtocolError::CtrlCsnJump { at: ProcessId(0), ours: 1, theirs: 3 };
        assert_eq!(a.clone(), a);
    }
}
