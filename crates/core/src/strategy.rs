//! Pluggable message-logging strategies — the `logSet` half of
//! `C_{i,k} = CT_{i,k} ∪ logSet_{i,k}` made swappable.
//!
//! The paper's contribution is logging *selectively*: only messages sent or
//! received between the tentative checkpoint `CT_{i,k}` and its
//! finalization event `CFE_{i,k}` are logged, and the full payload is kept
//! so received messages replay bit-for-bit (piecewise determinism). The
//! wider message-logging literature makes different trade-offs along three
//! axes — *what* is logged per event (full payload vs. a metadata-only
//! determinant vs. nothing), *where* payloads are durable (sender vs.
//! receiver), and *when* logging is active (only inside the tentative
//! window vs. continuously):
//!
//! * **sender-based** logging keeps payloads at the sender and only
//!   determinants at the receiver (Johnson & Zwaenepoel; the MPI
//!   protocol-extension line of work);
//! * **receiver-based pessimistic** logging keeps the full payload of
//!   every received message at the receiver, always;
//! * **causal** logging compresses receiver-side logs down to
//!   determinants ordered by vector clocks.
//!
//! [`LoggingStrategy`] captures exactly that decision surface, and
//! [`LoggingKind`] names the four implemented variants. The protocol state
//! machine (`OcptProcess`) consults the strategy at every send and receive;
//! recovery consumes the resulting durable log through a [`ReplayPlan`].
//! Experiment E10 (`exp_log`) sweeps the strategies against a grid of
//! fault patterns.
//!
//! The [`LoggingKind::Selective`] variant is the paper's policy *extracted,
//! not changed*: with it configured (the default), every trace, counter and
//! wire byte is identical to the pre-strategy code — a differential test
//! pins this.

// [OCPT §3.1] selective message logging — the paper's policy is the
// Selective variant below; the other variants are the comparison points
// from the message-logging literature it cites.

use crate::log::{Direction, EntryKind, LogEntry, MessageLog};
use crate::types::Status;

/// What a strategy wants logged for one message event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LogDecision {
    /// Log nothing.
    Skip,
    /// Log a metadata-only determinant (peer, message id, payload
    /// identity/size — enough to re-order and account, not to replay from
    /// this log alone).
    Determinant,
    /// Log the full payload (replayable from this log alone).
    Payload,
}

/// When a strategy's logging is active.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LogWindow {
    /// Only between `CT_{i,k}` and `CFE_{i,k}` — the paper's selective
    /// window. The log is cleared at every tentative checkpoint.
    TentativeOnly,
    /// At all times. The log accumulates from one finalization to the
    /// next; the tentative checkpoint marks where the *replay* window
    /// starts inside it (see [`MessageLog::mark_replay_start`]).
    Continuous,
}

/// The four implemented logging strategies, as a config-friendly enum.
///
/// ```
/// use ocpt_core::LoggingKind;
///
/// assert_eq!(LoggingKind::default(), LoggingKind::Selective);
/// assert_eq!(LoggingKind::parse("sender"), Some(LoggingKind::SenderBased));
/// assert_eq!(LoggingKind::parse("bogus"), None);
/// for k in LoggingKind::ALL {
///     assert_eq!(LoggingKind::parse(k.name()), Some(k));
/// }
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum LoggingKind {
    /// The paper's selective policy (the default): full payloads, both
    /// directions, only inside the tentative window.
    #[default]
    Selective,
    /// Payloads durable at the sender, determinants at the receiver,
    /// continuously.
    SenderBased,
    /// Full pessimistic receiver-side payload log, continuously; sends
    /// leave only determinants.
    ReceiverBased,
    /// Selective window, but receiver-side payloads are compressed to
    /// determinants and vector clocks are piggybacked to order them.
    CausalCompressed,
}

impl LoggingKind {
    /// Every variant, in a stable sweep order (the E10 grid order).
    pub const ALL: [LoggingKind; 4] = [
        LoggingKind::Selective,
        LoggingKind::SenderBased,
        LoggingKind::ReceiverBased,
        LoggingKind::CausalCompressed,
    ];

    /// Stable name used by `--strategy`, counters, traces and reports.
    pub fn name(self) -> &'static str {
        match self {
            LoggingKind::Selective => "selective",
            LoggingKind::SenderBased => "sender",
            LoggingKind::ReceiverBased => "receiver",
            LoggingKind::CausalCompressed => "causal",
        }
    }

    /// Parse a [`LoggingKind::name`] back into the kind (long aliases
    /// accepted). Returns `None` for unknown names.
    pub fn parse(s: &str) -> Option<LoggingKind> {
        match s {
            "selective" | "selective-as-published" => Some(LoggingKind::Selective),
            "sender" | "sender-based" => Some(LoggingKind::SenderBased),
            "receiver" | "receiver-based" => Some(LoggingKind::ReceiverBased),
            "causal" | "causal-compressed" => Some(LoggingKind::CausalCompressed),
            _ => None,
        }
    }

    /// The strategy object implementing this kind.
    pub fn strategy(self) -> &'static dyn LoggingStrategy {
        match self {
            LoggingKind::Selective => &Selective,
            LoggingKind::SenderBased => &SenderBased,
            LoggingKind::ReceiverBased => &ReceiverBased,
            LoggingKind::CausalCompressed => &CausalCompressed,
        }
    }
}

/// A message-logging strategy: per message event, decide whether and what
/// to log; plus the window shape and whether vector clocks ride along.
///
/// The protocol consults [`LoggingStrategy::decide`] with the *owner's*
/// direction and status at event time; what ends up durable is whatever
/// the live [`MessageLog`] holds when the checkpoint finalizes. Recovery
/// turns that durable log into a [`ReplayPlan`].
///
/// ```
/// use ocpt_core::{Direction, LogDecision, LoggingKind, Status};
///
/// // The paper's policy: full payloads, but only while tentative.
/// let s = LoggingKind::Selective.strategy();
/// assert_eq!(s.decide(Direction::Sent, Status::Tentative), LogDecision::Payload);
/// assert_eq!(s.decide(Direction::Sent, Status::Normal), LogDecision::Skip);
/// ```
pub trait LoggingStrategy {
    /// The kind this strategy implements.
    fn kind(&self) -> LoggingKind;

    /// Stable name (equals `self.kind().name()`).
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// What to log for a message event with direction `dir`, observed by a
    /// process whose status is `status` at event time.
    fn decide(&self, dir: Direction, status: Status) -> LogDecision;

    /// When logging is active.
    fn window(&self) -> LogWindow;

    /// Whether vector clocks are maintained and piggybacked on
    /// application messages (causal ordering of determinants).
    fn uses_clock(&self) -> bool {
        false
    }
}

/// The paper's policy, extracted verbatim: both directions log the full
/// payload, but only between `CT` and `CFE`; outside the window nothing is
/// logged. Byte-identical to the pre-strategy hard-coded behaviour.
///
/// ```
/// use ocpt_core::{strategy::Selective, Direction, LogDecision, LoggingStrategy, LogWindow, Status};
///
/// assert_eq!(Selective.decide(Direction::Received, Status::Tentative), LogDecision::Payload);
/// assert_eq!(Selective.decide(Direction::Received, Status::Normal), LogDecision::Skip);
/// assert_eq!(Selective.window(), LogWindow::TentativeOnly);
/// assert!(!Selective.uses_clock());
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Selective;

impl LoggingStrategy for Selective {
    fn kind(&self) -> LoggingKind {
        LoggingKind::Selective
    }

    fn decide(&self, dir: Direction, status: Status) -> LogDecision {
        match (status, dir) {
            (Status::Tentative, Direction::Sent) => LogDecision::Payload,
            (Status::Tentative, Direction::Received) => LogDecision::Payload,
            (Status::Normal, Direction::Sent) => LogDecision::Skip,
            (Status::Normal, Direction::Received) => LogDecision::Skip,
        }
    }

    fn window(&self) -> LogWindow {
        LogWindow::TentativeOnly
    }
}

/// Sender-based logging: every sent payload is durable at the sender,
/// always; receives leave only a determinant. Replaying a crashed process
/// needs payload fetches from its peers' sender logs, but any in-transit
/// message can always be regenerated.
///
/// ```
/// use ocpt_core::{strategy::SenderBased, Direction, LogDecision, LoggingStrategy, LogWindow, Status};
///
/// // Sends carry the payload even while Normal — the continuous window.
/// assert_eq!(SenderBased.decide(Direction::Sent, Status::Normal), LogDecision::Payload);
/// assert_eq!(SenderBased.decide(Direction::Received, Status::Tentative), LogDecision::Determinant);
/// assert_eq!(SenderBased.window(), LogWindow::Continuous);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct SenderBased;

impl LoggingStrategy for SenderBased {
    fn kind(&self) -> LoggingKind {
        LoggingKind::SenderBased
    }

    fn decide(&self, dir: Direction, _status: Status) -> LogDecision {
        match dir {
            Direction::Sent => LogDecision::Payload,
            Direction::Received => LogDecision::Determinant,
        }
    }

    fn window(&self) -> LogWindow {
        LogWindow::Continuous
    }
}

/// Receiver-based pessimistic logging: the full payload of every received
/// message is durable at the receiver, always. Replay is entirely local —
/// no fetches — but the log is the largest of the four, and in-transit
/// messages are unrecoverable (nobody kept the payload at the sender).
/// Experiment E5's always-log ablation is this variant's degenerate case.
///
/// ```
/// use ocpt_core::{strategy::ReceiverBased, Direction, LogDecision, LoggingStrategy, Status};
///
/// assert_eq!(ReceiverBased.decide(Direction::Received, Status::Normal), LogDecision::Payload);
/// assert_eq!(ReceiverBased.decide(Direction::Sent, Status::Normal), LogDecision::Determinant);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct ReceiverBased;

impl LoggingStrategy for ReceiverBased {
    fn kind(&self) -> LoggingKind {
        LoggingKind::ReceiverBased
    }

    fn decide(&self, dir: Direction, _status: Status) -> LogDecision {
        match dir {
            Direction::Sent => LogDecision::Determinant,
            Direction::Received => LogDecision::Payload,
        }
    }

    fn window(&self) -> LogWindow {
        LogWindow::Continuous
    }
}

/// Causal-compressed logging: the paper's selective window, but
/// receiver-side payloads shrink to determinants and every application
/// message piggybacks the sender's vector clock. The frozen clock of each
/// finalized checkpoint orders the determinants causally — recovery can
/// prove the cut consistent from the clocks alone (Theorem 2 restated),
/// at the cost of clock bytes on every message.
///
/// ```
/// use ocpt_core::{strategy::CausalCompressed, Direction, LogDecision, LoggingStrategy, Status};
///
/// let s = CausalCompressed;
/// assert!(s.uses_clock());
/// assert_eq!(s.decide(Direction::Received, Status::Tentative), LogDecision::Determinant);
/// assert_eq!(s.decide(Direction::Received, Status::Normal), LogDecision::Skip);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct CausalCompressed;

impl LoggingStrategy for CausalCompressed {
    fn kind(&self) -> LoggingKind {
        LoggingKind::CausalCompressed
    }

    fn decide(&self, dir: Direction, status: Status) -> LogDecision {
        match (status, dir) {
            (Status::Tentative, Direction::Sent) => LogDecision::Payload,
            (Status::Tentative, Direction::Received) => LogDecision::Determinant,
            (Status::Normal, Direction::Sent) => LogDecision::Skip,
            (Status::Normal, Direction::Received) => LogDecision::Skip,
        }
    }

    fn window(&self) -> LogWindow {
        LogWindow::TentativeOnly
    }

    fn uses_clock(&self) -> bool {
        true
    }
}

/// What recovery does with one durable log: the replay schedule, the
/// in-transit regeneration candidates, and the determinants whose payload
/// lives elsewhere.
///
/// ```
/// use ocpt_core::{AppPayload, Direction, LogEntry, MessageLog, ReplayPlan};
/// use ocpt_sim::{MsgId, ProcessId};
///
/// let mut log = MessageLog::new();
/// log.push(LogEntry::payload(Direction::Sent, ProcessId(1), MsgId(1), AppPayload { id: 1, len: 8 }));
/// log.push(LogEntry::determinant(Direction::Received, ProcessId(2), MsgId(2), AppPayload { id: 2, len: 8 }));
/// let plan = ReplayPlan::for_log(&log);
/// assert_eq!(plan.resend.len(), 1); // the sent payload regenerates in-transit losses
/// assert_eq!(plan.replay.len(), 1); // the receive is replayed...
/// assert_eq!(plan.fetch.len(), 1); // ...but its payload must be fetched from P2
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReplayPlan {
    /// Received entries inside the replay window, in arrival order — the
    /// replay schedule reproducing the state at `CFE_{i,k}`.
    pub replay: Vec<LogEntry>,
    /// Sent entries carrying their payload: regeneration candidates for
    /// messages in transit across the recovery line.
    pub resend: Vec<LogEntry>,
    /// Received determinants inside the replay window: replayable in
    /// order, but the payload bytes must be fetched from the sender's
    /// durable log (a real deployment pays one round-trip each).
    pub fetch: Vec<LogEntry>,
}

impl ReplayPlan {
    /// Build the plan for one durable log, whatever strategy produced it.
    pub fn for_log(log: &MessageLog) -> ReplayPlan {
        let mut plan = ReplayPlan::default();
        for e in log.replay_entries() {
            if e.dir == Direction::Received {
                plan.replay.push(*e);
                if e.kind == EntryKind::Determinant {
                    plan.fetch.push(*e);
                }
            }
        }
        // Resend candidates come from the *whole* log, not just the replay
        // window: a continuously-logging sender may hold pre-CT payloads
        // that are still in transit across the line.
        plan.resend.extend(log.sent().filter(|e| e.kind == EntryKind::Payload).copied());
        plan
    }

    /// Payload bytes replayed straight from the local log.
    pub fn local_replay_bytes(&self) -> u64 {
        self.replay
            .iter()
            .filter(|e| e.kind == EntryKind::Payload)
            .map(|e| e.payload.len as u64)
            .sum()
    }

    /// Payload bytes that must be fetched from peers before replay.
    pub fn fetch_bytes(&self) -> u64 {
        self.fetch.iter().map(|e| e.payload.len as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::AppPayload;
    use ocpt_sim::{MsgId, ProcessId};

    #[test]
    fn kinds_round_trip_names() {
        for k in LoggingKind::ALL {
            assert_eq!(LoggingKind::parse(k.name()), Some(k));
            assert_eq!(k.strategy().kind(), k);
            assert_eq!(k.strategy().name(), k.name());
        }
        assert_eq!(LoggingKind::parse("selective-as-published"), Some(LoggingKind::Selective));
        assert_eq!(LoggingKind::parse(""), None);
    }

    #[test]
    fn decision_matrix_is_the_documented_table() {
        use Direction::{Received, Sent};
        use LogDecision::{Determinant, Payload, Skip};
        use Status::{Normal, Tentative};
        // (kind, dir, status) → decision; the table DESIGN.md prints.
        let table = [
            (LoggingKind::Selective, Sent, Tentative, Payload),
            (LoggingKind::Selective, Received, Tentative, Payload),
            (LoggingKind::Selective, Sent, Normal, Skip),
            (LoggingKind::Selective, Received, Normal, Skip),
            (LoggingKind::SenderBased, Sent, Tentative, Payload),
            (LoggingKind::SenderBased, Sent, Normal, Payload),
            (LoggingKind::SenderBased, Received, Tentative, Determinant),
            (LoggingKind::SenderBased, Received, Normal, Determinant),
            (LoggingKind::ReceiverBased, Received, Tentative, Payload),
            (LoggingKind::ReceiverBased, Received, Normal, Payload),
            (LoggingKind::ReceiverBased, Sent, Tentative, Determinant),
            (LoggingKind::ReceiverBased, Sent, Normal, Determinant),
            (LoggingKind::CausalCompressed, Sent, Tentative, Payload),
            (LoggingKind::CausalCompressed, Received, Tentative, Determinant),
            (LoggingKind::CausalCompressed, Sent, Normal, Skip),
            (LoggingKind::CausalCompressed, Received, Normal, Skip),
        ];
        for (kind, dir, status, want) in table {
            assert_eq!(kind.strategy().decide(dir, status), want, "{kind:?} {dir:?} {status:?}");
        }
    }

    #[test]
    fn windows_and_clocks() {
        assert_eq!(LoggingKind::Selective.strategy().window(), LogWindow::TentativeOnly);
        assert_eq!(LoggingKind::SenderBased.strategy().window(), LogWindow::Continuous);
        assert_eq!(LoggingKind::ReceiverBased.strategy().window(), LogWindow::Continuous);
        assert_eq!(LoggingKind::CausalCompressed.strategy().window(), LogWindow::TentativeOnly);
        for k in LoggingKind::ALL {
            assert_eq!(k.strategy().uses_clock(), k == LoggingKind::CausalCompressed, "{k:?}");
        }
    }

    #[test]
    fn replay_plan_splits_by_kind_and_window() {
        let pl = |id: u64| AppPayload { id, len: 10 };
        let mut log = MessageLog::new();
        // Pre-CT era (continuous logging): a sent payload and a received
        // determinant land before the replay window opens.
        log.push(LogEntry::payload(Direction::Sent, ProcessId(1), MsgId(1), pl(1)));
        log.push(LogEntry::determinant(Direction::Received, ProcessId(2), MsgId(2), pl(2)));
        log.mark_replay_start();
        // In-window traffic.
        log.push(LogEntry::payload(Direction::Sent, ProcessId(2), MsgId(3), pl(3)));
        log.push(LogEntry::determinant(Direction::Received, ProcessId(1), MsgId(4), pl(4)));
        log.push(LogEntry::payload(Direction::Received, ProcessId(1), MsgId(5), pl(5)));

        let plan = ReplayPlan::for_log(&log);
        // Replay = in-window receives only, arrival order.
        let ids: Vec<u64> = plan.replay.iter().map(|e| e.msg_id.0).collect();
        assert_eq!(ids, vec![4, 5]);
        // Fetches = the in-window received determinant.
        assert_eq!(plan.fetch.len(), 1);
        assert_eq!(plan.fetch[0].msg_id, MsgId(4));
        // Resends = every sent payload, including the pre-CT one.
        let ids: Vec<u64> = plan.resend.iter().map(|e| e.msg_id.0).collect();
        assert_eq!(ids, vec![1, 3]);
        assert_eq!(plan.local_replay_bytes(), 10);
        assert_eq!(plan.fetch_bytes(), 10);
    }
}
