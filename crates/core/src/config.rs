//! Protocol configuration: the knobs the paper describes plus the ablation
//! toggles the experiments sweep.

use ocpt_sim::SimDuration;

use crate::strategy::LoggingKind;

/// When the *tentative checkpoint* (not the log) is written to stable
/// storage. The paper: "the tentative checkpoint can be flushed to stable
/// storage any time after it was taken and before it was finalized" —
/// choosing that moment freely is what de-clusters the writes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushPolicy {
    /// Write the tentative checkpoint immediately when taken (worst case
    /// for contention; what a synchronous scheme effectively does).
    Eager,
    /// Keep it in memory and write everything at finalization.
    Lazy,
    /// Write it after a uniformly random delay in `[0, max_delay]`,
    /// bounded by finalization — the "convenient time" the paper suggests.
    Jittered {
        /// Upper bound of the random flush delay.
        max_delay: SimDuration,
    },
}

/// When the *finalization* storage writes (the frozen tentative checkpoint
/// and its message log) actually land on the file server.
///
/// The finalize **decision** fixes the checkpoint's content and its
/// consistency cut (`CFE_{i,k}`); correctness never depends on when the
/// bytes reach stable storage (the recovery line simply lags until they
/// do). That freedom — "store them at stable storage at their own
/// convenience" (§1) — is the paper's whole contention story, so the
/// write placement is an explicit policy:
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WritePolicy {
    /// Write at the finalize decision (clusters writes when application
    /// traffic converges a round quickly — synchronous-like contention).
    Immediate,
    /// Write after a uniformly random delay in `[0, window]`.
    Jittered {
        /// Upper bound of the random write delay.
        window: SimDuration,
    },
    /// Write after a deterministic per-process offset `window · i / N`.
    /// Serialises the writes like Vaidya's staggering, but with zero
    /// extra messages — each process only needs its id and `N`.
    Phased {
        /// Total spread of the offsets.
        window: SimDuration,
    },
}

/// Shape of the control-message convergence wave.
///
/// The paper's Fig. 4 runs one flat `CK_REQ` ring through all `N`
/// processes and has `P_0` broadcast `CK_END` to everyone — O(N) work on
/// the coordinator and an O(N)-hop token walk. Past a few hundred
/// processes that is the scaling wall, so processes can be sharded into
/// contiguous id groups: each group runs its own ring under a group
/// leader (the smallest id in the group), leaders exchange summaries with
/// `P_0` (`CK_BGN` escalation up, `CK_GRP_DONE` up, `CK_END` relayed
/// down), and no single process ever sends more than
/// O(group size + #groups) control messages per round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ControlTopology {
    /// The paper's single flat ring coordinated by `P_0`.
    Flat,
    /// Fixed-size contiguous id groups (`P_{g·s} … P_{g·s+s-1}`), each
    /// with an intra-group ring; leaders talk to `P_0`.
    Grouped {
        /// Processes per group (the last group may be smaller).
        group_size: u32,
    },
    /// Flat up to `threshold` processes, then grouped with a group size of
    /// `⌈√N⌉` — the size that balances ring length against leader count.
    Auto {
        /// Largest N that still runs the flat ring.
        threshold: u32,
    },
}

impl ControlTopology {
    /// Resolve to a concrete group size for a system of `n` processes;
    /// `None` means the flat ring. Degenerate shards (a single group, or
    /// groups of one) fall back to flat as well.
    pub fn group_size(self, n: usize) -> Option<u32> {
        let size = match self {
            ControlTopology::Flat => return None,
            ControlTopology::Grouped { group_size } => group_size,
            ControlTopology::Auto { threshold } => {
                if n <= threshold as usize {
                    return None;
                }
                isqrt_ceil(n as u64) as u32
            }
        };
        (size >= 2 && (size as usize) < n).then_some(size)
    }
}

/// `⌈√v⌉` without floating point (bit-identical on every platform).
fn isqrt_ceil(v: u64) -> u64 {
    if v <= 1 {
        return v;
    }
    let mut lo = 1u64;
    let mut hi = 1u64 << (v.ilog2() / 2 + 1);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if mid * mid >= v {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// Configuration of the OCPT protocol.
#[derive(Clone, Copy, Debug)]
pub struct OcptConfig {
    /// Period of scheduled basic checkpoints ("once in every time interval
    /// of t seconds", §1).
    pub checkpoint_interval: SimDuration,
    /// Convergence timer: if a tentative checkpoint is not finalized within
    /// this span, the control-message machinery starts (§3.5.1).
    pub convergence_timeout: SimDuration,
    /// Master switch for the control-message layer. With it off you get the
    /// *basic* algorithm of Fig. 3, which can fail to converge — the
    /// convergence tests demonstrate exactly that.
    pub control_messages: bool,
    /// §3.5.1 case (1): suppress `CK_BGN` when a smaller-id process is
    /// known to have taken the tentative checkpoint.
    pub optimize_ck_bgn: bool,
    /// §3.5.1 case (2): skip already-tentative processes when forwarding
    /// `CK_REQ`.
    pub optimize_ck_req: bool,
    /// The fix the paper pairs with CK_BGN suppression: `P_0` broadcasts
    /// `CK_END` whenever it finalizes, so suppressed processes cannot
    /// starve.
    pub p0_broadcast_on_finalize: bool,
    /// Re-arm the convergence timer after it fires (not in the paper;
    /// defensive option, default off so message counts match Fig. 4).
    pub rearm_timer: bool,
    /// Shape of the control wave: the paper's flat ring, explicit groups,
    /// or the automatic √N sharding above a size threshold.
    pub control_topology: ControlTopology,
    /// When tentative checkpoints are flushed (driver-level policy).
    pub flush_policy: FlushPolicy,
    /// When the finalization writes land on stable storage.
    pub finalize_write: WritePolicy,
    /// Declared size of a tentative checkpoint (process state) in bytes.
    pub state_bytes: u64,
    /// Which message-logging strategy fills `logSet_{i,k}` — the paper's
    /// selective policy by default; see [`crate::strategy`].
    pub logging: LoggingKind,
}

impl Default for OcptConfig {
    fn default() -> Self {
        OcptConfig {
            checkpoint_interval: SimDuration::from_secs(1),
            convergence_timeout: SimDuration::from_millis(250),
            control_messages: true,
            optimize_ck_bgn: true,
            optimize_ck_req: true,
            p0_broadcast_on_finalize: true,
            rearm_timer: false,
            // N ≤ 512 keeps the paper-exact flat ring; larger systems
            // shard into ⌈√N⌉-sized groups. Every stock experiment runs
            // at N ≤ 128, so defaults stay byte-identical to the flat era.
            control_topology: ControlTopology::Auto { threshold: 512 },
            flush_policy: FlushPolicy::Lazy,
            finalize_write: WritePolicy::Phased { window: SimDuration::from_millis(400) },
            state_bytes: 4 * 1024 * 1024,
            logging: LoggingKind::Selective,
        }
    }
}

impl OcptConfig {
    /// The unoptimized ("naive") control-message variant: every timed-out
    /// process sends `CK_BGN`; `CK_REQ` walks the full ring; no proactive
    /// `CK_END` broadcast (the reactive one in Fig. 4 suffices).
    pub fn naive_control() -> Self {
        OcptConfig {
            optimize_ck_bgn: false,
            optimize_ck_req: false,
            p0_broadcast_on_finalize: false,
            ..Default::default()
        }
    }

    /// The pure basic algorithm of Fig. 3 — no control messages at all.
    pub fn basic_only() -> Self {
        OcptConfig { control_messages: false, ..Default::default() }
    }

    /// Check internal consistency. CK_BGN suppression without the `P_0`
    /// broadcast is the starvation hazard the paper warns about (§3.5.1
    /// case 1), so it is rejected here; a dedicated test shows the hazard
    /// by bypassing validation.
    pub fn validate(&self) -> Result<(), String> {
        if self.checkpoint_interval.is_zero() {
            return Err("checkpoint_interval must be positive".into());
        }
        if self.control_messages && self.convergence_timeout.is_zero() {
            return Err("convergence_timeout must be positive".into());
        }
        if self.optimize_ck_bgn && !self.p0_broadcast_on_finalize {
            return Err("optimize_ck_bgn requires p0_broadcast_on_finalize (suppressed \
                 processes can starve otherwise; see paper §3.5.1 case 1)"
                .into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(OcptConfig::default().validate().is_ok());
    }

    #[test]
    fn naive_and_basic_are_valid() {
        assert!(OcptConfig::naive_control().validate().is_ok());
        assert!(OcptConfig::basic_only().validate().is_ok());
    }

    #[test]
    fn suppression_without_broadcast_rejected() {
        let c = OcptConfig { p0_broadcast_on_finalize: false, ..Default::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn topology_resolution() {
        // Flat never shards.
        assert_eq!(ControlTopology::Flat.group_size(100_000), None);
        // Auto: flat at/below the threshold, ⌈√N⌉ above it.
        let auto = ControlTopology::Auto { threshold: 512 };
        assert_eq!(auto.group_size(512), None);
        assert_eq!(auto.group_size(513), Some(23)); // ⌈√513⌉
        assert_eq!(auto.group_size(10_000), Some(100));
        assert_eq!(auto.group_size(100_000), Some(317)); // ⌈√100000⌉
                                                         // Explicit groups, with degenerate shapes falling back to flat.
        assert_eq!(ControlTopology::Grouped { group_size: 4 }.group_size(12), Some(4));
        assert_eq!(ControlTopology::Grouped { group_size: 1 }.group_size(12), None);
        assert_eq!(ControlTopology::Grouped { group_size: 12 }.group_size(12), None);
        assert_eq!(ControlTopology::Grouped { group_size: 64 }.group_size(12), None);
    }

    #[test]
    fn isqrt_ceil_exact() {
        for (v, want) in [(0, 0), (1, 1), (2, 2), (4, 2), (5, 3), (9, 3), (10, 4), (100, 10)] {
            assert_eq!(isqrt_ceil(v), want, "isqrt_ceil({v})");
        }
        assert_eq!(isqrt_ceil(100_000), 317);
        assert_eq!(isqrt_ceil(1u64 << 40), 1 << 20);
    }

    #[test]
    fn zero_intervals_rejected() {
        let c = OcptConfig { checkpoint_interval: SimDuration::ZERO, ..Default::default() };
        assert!(c.validate().is_err());
        let c = OcptConfig { convergence_timeout: SimDuration::ZERO, ..Default::default() };
        assert!(c.validate().is_err());
    }
}
