//! The control-message extension (paper §3.5.1, Fig. 4) — the *generalized
//! checkpointing algorithm*.
//!
//! The basic algorithm converges only if application traffic happens to
//! spread status knowledge everywhere; otherwise a tentative checkpoint can
//! sit unfinalized forever (the paper's *convergence problem*). The fix:
//!
//! 1. a timer armed at every tentative checkpoint; on expiry the process
//!    sends `CK_BGN` to `P_0` (suppressed when a smaller-id process is
//!    known to be tentative — §3.5.1 case 1);
//! 2. `P_0` circulates a `CK_REQ` token that makes every process take the
//!    tentative checkpoint, skipping processes already known tentative
//!    (§3.5.1 case 2);
//! 3. when the token returns, `P_0` broadcasts `CK_END`, upon which
//!    everyone finalizes (paper Theorem 1: the generalized algorithm
//!    converges).
//!
//! The timer is cancelled when the checkpoint finalizes or when any
//! control message carrying the current sequence number arrives.

use ocpt_sim::ProcessId;

use crate::actions::{Action, Outbox};
use crate::error::ProtocolError;
use crate::protocol::OcptProcess;
use crate::types::{Csn, Status};
use crate::wire::{CtrlKind, CtrlMsg};

impl OcptProcess {
    /// The convergence timer for checkpoint `csn` fired (Fig. 4, "When the
    /// timer for finalizing the tentative checkpoint on P_i expires").
    pub fn on_timer(&mut self, csn: Csn, out: &mut Outbox) {
        // Stale or already-resolved timers are ignored.
        if self.status() != Status::Tentative || self.csn() != csn {
            return;
        }
        self.timer_armed = false;
        self.stats_mut().inc("timer.expired");
        if self.id() == ProcessId::P0 {
            // P_0 initiates CK_REQ messages directly.
            self.forward_ck_req(out);
        } else {
            if self.config().optimize_ck_bgn {
                // [OCPT §3.5.1] case 1 (CK_BGN suppression): if some P_j
                // with j < i is known tentative,
                // that process (or a smaller one) will notify P_0.
                if let Some(min) = self.tent_set().min() {
                    if min < self.id() {
                        self.stats_mut().inc("ctrl.bgn_suppressed");
                        self.maybe_rearm(out);
                        return;
                    }
                }
            }
            self.stats_mut().inc("ctrl.bgn_sent");
            out.push(Action::SendCtrl {
                dst: ProcessId::P0,
                cm: CtrlMsg { kind: CtrlKind::CkBgn, csn },
            });
        }
        self.maybe_rearm(out);
    }

    fn maybe_rearm(&mut self, out: &mut Outbox) {
        if self.config().rearm_timer && self.status() == Status::Tentative {
            self.timer_armed = true;
            self.stats_mut().inc("timer.set");
            out.push(Action::SetTimer { csn: self.csn() });
        }
    }

    /// `forwardCheckpointRequest(P_i, CM)` from Fig. 4.
    ///
    /// Chooses the next hop for the `CK_REQ` token:
    /// * a process that has already finalized forwards straight to `P_0`
    ///   (§3.5.1 case 2, "If it has finalized this checkpoint, it forwards
    ///   the message to P_0 directly");
    /// * with the skip optimization, the first `P_k` (`k > i`) *not* known
    ///   tentative; if all higher ids are known tentative, `P_0`;
    /// * without it, simply `P_{i+1}` (wrapping to `P_0`).
    ///
    /// If the chosen hop is `P_0` and we *are* `P_0`, the ring is complete:
    /// broadcast `CK_END` and finalize.
    pub(crate) fn forward_ck_req(&mut self, out: &mut Outbox) {
        // [OCPT §3.5.1] case 2 (CK_REQ skipping): route the ring token past
        // processes already known tentative.
        let csn = self.csn();
        let dst = if self.status() == Status::Normal {
            ProcessId::P0
        } else if self.config().optimize_ck_req {
            self.tent_set().first_absent_above(self.id()).unwrap_or(ProcessId::P0)
        } else {
            ProcessId((self.id().0 + 1) % self.n() as u16)
        };
        self.ck_req_sent_for = Some(csn);
        if dst == ProcessId::P0 && self.id() == ProcessId::P0 {
            // Ring closed at the coordinator without leaving it.
            self.complete_ring(out);
            return;
        }
        self.stats_mut().inc("ctrl.req_sent");
        out.push(Action::SendCtrl { dst, cm: CtrlMsg { kind: CtrlKind::CkReq, csn } });
    }

    /// `P_0` learned that every process has taken the tentative checkpoint:
    /// broadcast `CK_END` (once) and finalize its own checkpoint.
    fn complete_ring(&mut self, out: &mut Outbox) {
        debug_assert_eq!(self.id(), ProcessId::P0);
        if self.ck_end_sent_for != Some(self.csn()) {
            self.broadcast_ck_end(out);
        }
        if self.status() == Status::Tentative {
            self.finalize(out);
        }
    }

    /// Broadcast `CK_END(csn)` to every other process (Fig. 4).
    pub(crate) fn broadcast_ck_end(&mut self, out: &mut Outbox) {
        let csn = self.csn();
        if self.ck_end_sent_for == Some(csn) {
            return;
        }
        self.ck_end_sent_for = Some(csn);
        let me = self.id();
        for dst in ProcessId::all(self.n()).filter(|d| *d != me) {
            out.push(Action::SendCtrl { dst, cm: CtrlMsg { kind: CtrlKind::CkEnd, csn } });
        }
        let fanout = self.n() as u64 - 1;
        self.stats_mut().add("ctrl.end_sent", fanout);
    }

    /// A control message arrived (Fig. 4, "When P_i receives CM from P_j").
    pub fn on_ctrl_receive(
        &mut self,
        src: ProcessId,
        cm: CtrlMsg,
        out: &mut Outbox,
    ) -> Result<(), ProtocolError> {
        let _ = src;
        self.stats_mut().inc("ctrl.received");

        // Timer cancellation rule: "the timer is canceled when … it
        // receives a CM with sequence number equal to that of its current
        // tentative checkpoint."
        if self.status() == Status::Tentative && cm.csn == self.csn() && self.timer_armed {
            self.timer_armed = false;
            out.push(Action::CancelTimer);
        }

        if cm.csn == self.csn() + 1 {
            if cm.kind == CtrlKind::CkEnd {
                // P_0 can only finalize csn+1 after we took tentative csn+1.
                return Err(ProtocolError::CkEndAhead {
                    at: self.id(),
                    ours: self.csn(),
                    theirs: cm.csn,
                });
            }
            // The sender is already at csn+1, so checkpoint csn is fully
            // taken everywhere: finalize ours (if pending), join the new
            // one, and keep the token moving. The timer for the new
            // tentative checkpoint is not armed: this very message is a CM
            // carrying its sequence number, which would cancel it on the
            // spot (Fig. 4's cancellation rule).
            if self.status() == Status::Tentative {
                self.finalize(out);
            }
            self.take_tentative(out, false);
            self.forward_ck_req(out);
            return Ok(());
        }

        if cm.csn == self.csn() {
            match cm.kind {
                CtrlKind::CkBgn => {
                    if self.status() == Status::Tentative {
                        if self.ck_req_sent_for == Some(cm.csn) {
                            return Ok(()); // dedupe (Fig. 4)
                        }
                        self.forward_ck_req(out);
                    } else {
                        // Already finalized: tell everyone (handles the
                        // suppression starvation case).
                        self.broadcast_ck_end(out);
                    }
                }
                CtrlKind::CkReq => {
                    if self.id() == ProcessId::P0 {
                        self.complete_ring(out);
                    } else if self.ck_req_sent_for != Some(cm.csn) {
                        self.forward_ck_req(out);
                    }
                }
                CtrlKind::CkEnd => {
                    if self.status() == Status::Tentative {
                        self.finalize(out);
                    }
                }
            }
            return Ok(());
        }

        if cm.csn < self.csn() {
            // Stale control message from a past checkpoint — ignore.
            self.stats_mut().inc("ctrl.stale_ignored");
            return Ok(());
        }

        // cm.csn > csn + 1: impossible under reliable channels.
        Err(ProtocolError::CtrlCsnJump { at: self.id(), ours: self.csn(), theirs: cm.csn })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OcptConfig;
    use crate::log::MessageLog;
    use crate::wire::AppPayload;
    use ocpt_sim::MsgId;

    fn p(i: u16) -> ProcessId {
        ProcessId(i)
    }

    fn proc_with(i: u16, n: usize, cfg: OcptConfig) -> OcptProcess {
        OcptProcess::new(p(i), n, cfg)
    }

    fn proc(i: u16, n: usize) -> OcptProcess {
        proc_with(i, n, OcptConfig::default())
    }

    fn ctrl_sends(out: &Outbox) -> Vec<(ProcessId, CtrlMsg)> {
        out.iter()
            .filter_map(|a| match a {
                Action::SendCtrl { dst, cm } => Some((*dst, *cm)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn tentative_checkpoint_arms_timer() {
        let mut q = proc(1, 4);
        let mut out = Outbox::new();
        q.initiate_checkpoint(&mut out);
        assert!(out.contains(&Action::SetTimer { csn: 1 }));
    }

    #[test]
    fn timer_expiry_sends_ck_bgn_to_p0() {
        let mut q = proc(2, 4);
        let mut out = Outbox::new();
        q.initiate_checkpoint(&mut out);
        out.clear();
        q.on_timer(1, &mut out);
        assert_eq!(ctrl_sends(&out), vec![(p(0), CtrlMsg { kind: CtrlKind::CkBgn, csn: 1 })]);
    }

    #[test]
    fn stale_timer_ignored() {
        let mut q = proc(2, 4);
        let mut out = Outbox::new();
        q.initiate_checkpoint(&mut out);
        out.clear();
        q.on_timer(0, &mut out); // old csn
        assert!(out.is_empty());
    }

    #[test]
    fn ck_bgn_suppressed_when_smaller_id_known() {
        let mut q = proc(2, 4);
        let mut out = Outbox::new();
        q.initiate_checkpoint(&mut out);
        // Learn that P1 is tentative via an app message.
        let pb = crate::piggyback::Piggyback {
            csn: 1,
            stat: Status::Tentative,
            tent_set: crate::types::TentSet::singleton(4, p(1)),
        };
        q.on_app_receive(p(1), MsgId(1), AppPayload { id: 1, len: 0 }, &pb, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        out.clear();
        q.on_timer(1, &mut out);
        assert!(ctrl_sends(&out).is_empty(), "CK_BGN must be suppressed");
        assert_eq!(q.stats().get("ctrl.bgn_suppressed"), 1);
    }

    #[test]
    fn naive_mode_never_suppresses() {
        let mut q = proc_with(2, 4, OcptConfig::naive_control());
        let mut out = Outbox::new();
        q.initiate_checkpoint(&mut out);
        let pb = crate::piggyback::Piggyback {
            csn: 1,
            stat: Status::Tentative,
            tent_set: crate::types::TentSet::singleton(4, p(1)),
        };
        q.on_app_receive(p(1), MsgId(1), AppPayload { id: 1, len: 0 }, &pb, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        out.clear();
        q.on_timer(1, &mut out);
        assert_eq!(ctrl_sends(&out).len(), 1);
    }

    #[test]
    fn p0_timer_starts_req_ring() {
        let mut q = proc(0, 4);
        let mut out = Outbox::new();
        q.initiate_checkpoint(&mut out);
        out.clear();
        q.on_timer(1, &mut out);
        // P0 knows only itself tentative → token goes to P1.
        assert_eq!(ctrl_sends(&out), vec![(p(1), CtrlMsg { kind: CtrlKind::CkReq, csn: 1 })]);
    }

    #[test]
    fn req_skip_optimization_skips_known_tentatives() {
        let mut q = proc(0, 5);
        let mut out = Outbox::new();
        q.initiate_checkpoint(&mut out);
        // P0 learns P1 and P2 are tentative.
        let mut ts = crate::types::TentSet::singleton(5, p(1));
        ts.insert(p(2));
        let pb = crate::piggyback::Piggyback { csn: 1, stat: Status::Tentative, tent_set: ts };
        q.on_app_receive(p(1), MsgId(1), AppPayload { id: 1, len: 0 }, &pb, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        out.clear();
        q.on_timer(1, &mut out);
        // Token skips P1, P2 and lands on P3.
        assert_eq!(ctrl_sends(&out), vec![(p(3), CtrlMsg { kind: CtrlKind::CkReq, csn: 1 })]);
    }

    #[test]
    fn naive_req_walks_the_full_ring() {
        let mut q = proc_with(0, 5, OcptConfig::naive_control());
        let mut out = Outbox::new();
        q.initiate_checkpoint(&mut out);
        let mut ts = crate::types::TentSet::singleton(5, p(1));
        ts.insert(p(2));
        let pb = crate::piggyback::Piggyback { csn: 1, stat: Status::Tentative, tent_set: ts };
        q.on_app_receive(p(1), MsgId(1), AppPayload { id: 1, len: 0 }, &pb, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        out.clear();
        q.on_timer(1, &mut out);
        assert_eq!(ctrl_sends(&out), vec![(p(1), CtrlMsg { kind: CtrlKind::CkReq, csn: 1 })]);
    }

    #[test]
    fn ck_req_one_ahead_takes_checkpoint_and_forwards() {
        // P2 is normal at csn 0; CK_REQ(1) arrives.
        let mut q = proc(2, 4);
        let mut out = Outbox::new();
        q.on_ctrl_receive(p(1), CtrlMsg { kind: CtrlKind::CkReq, csn: 1 }, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        assert_eq!(q.csn(), 1);
        assert_eq!(q.status(), Status::Tentative);
        // Forwards to P3 (knows only itself).
        assert_eq!(ctrl_sends(&out), vec![(p(3), CtrlMsg { kind: CtrlKind::CkReq, csn: 1 })]);
        // No timer armed: this CM would cancel it immediately.
        assert!(!out.contains(&Action::SetTimer { csn: 1 }));
    }

    #[test]
    fn ck_req_one_ahead_finalizes_pending_first() {
        // P2 tentative at csn 1; CK_REQ(2) arrives → finalize 1, take 2.
        let mut q = proc(2, 4);
        let mut out = Outbox::new();
        q.initiate_checkpoint(&mut out);
        out.clear();
        q.on_ctrl_receive(p(1), CtrlMsg { kind: CtrlKind::CkReq, csn: 2 }, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        assert_eq!(q.csn(), 2);
        assert!(out.iter().any(|a| matches!(a, Action::Finalize { csn: 1, .. })));
        assert!(out.iter().any(|a| matches!(a, Action::TakeTentative { csn: 2 })));
    }

    #[test]
    fn last_process_returns_token_to_p0() {
        let mut q = proc(3, 4);
        let mut out = Outbox::new();
        q.on_ctrl_receive(p(2), CtrlMsg { kind: CtrlKind::CkReq, csn: 1 }, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        assert_eq!(ctrl_sends(&out), vec![(p(0), CtrlMsg { kind: CtrlKind::CkReq, csn: 1 })]);
    }

    #[test]
    fn p0_on_token_return_broadcasts_end_and_finalizes() {
        let mut q = proc(0, 4);
        let mut out = Outbox::new();
        q.initiate_checkpoint(&mut out);
        out.clear();
        q.on_ctrl_receive(p(3), CtrlMsg { kind: CtrlKind::CkReq, csn: 1 }, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        let sends = ctrl_sends(&out);
        let ends: Vec<_> = sends.iter().filter(|(_, cm)| cm.kind == CtrlKind::CkEnd).collect();
        assert_eq!(ends.len(), 3); // P1, P2, P3
        assert!(out.iter().any(|a| matches!(a, Action::Finalize { csn: 1, .. })));
        assert_eq!(q.status(), Status::Normal);
        // A second token return must not re-broadcast.
        out.clear();
        q.on_ctrl_receive(p(2), CtrlMsg { kind: CtrlKind::CkReq, csn: 1 }, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        assert!(ctrl_sends(&out).is_empty());
    }

    #[test]
    fn ck_end_finalizes_tentative() {
        let mut q = proc(2, 4);
        let mut out = Outbox::new();
        q.initiate_checkpoint(&mut out);
        out.clear();
        q.on_ctrl_receive(p(0), CtrlMsg { kind: CtrlKind::CkEnd, csn: 1 }, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        assert_eq!(q.status(), Status::Normal);
        assert!(out.iter().any(|a| matches!(a, Action::Finalize { csn: 1, .. })));
        // Duplicate CK_END is harmless.
        out.clear();
        q.on_ctrl_receive(p(0), CtrlMsg { kind: CtrlKind::CkEnd, csn: 1 }, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        assert!(out.is_empty());
    }

    #[test]
    fn ctrl_with_current_csn_cancels_timer() {
        let mut q = proc(2, 4);
        let mut out = Outbox::new();
        q.initiate_checkpoint(&mut out);
        out.clear();
        q.on_ctrl_receive(p(1), CtrlMsg { kind: CtrlKind::CkReq, csn: 1 }, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        assert!(out.contains(&Action::CancelTimer));
    }

    #[test]
    fn ck_bgn_at_finalized_p0_rebroadcasts_end() {
        // P0 finalized csn 1 (normal). A late CK_BGN(1) arrives: P0 must
        // answer with CK_END so the sender can finalize (§3.5.1 case 1 fix).
        let mut q = proc_with(0, 3, OcptConfig::naive_control());
        let mut out = Outbox::new();
        q.initiate_checkpoint(&mut out);
        // Learn everyone took it → finalize.
        let mut ts = crate::types::TentSet::singleton(3, p(1));
        ts.insert(p(2));
        let pb = crate::piggyback::Piggyback { csn: 1, stat: Status::Tentative, tent_set: ts };
        q.on_app_receive(p(1), MsgId(1), AppPayload { id: 1, len: 0 }, &pb, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        assert_eq!(q.status(), Status::Normal);
        out.clear();
        q.on_ctrl_receive(p(2), CtrlMsg { kind: CtrlKind::CkBgn, csn: 1 }, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        let ends = ctrl_sends(&out);
        assert_eq!(ends.len(), 2);
        assert!(ends.iter().all(|(_, cm)| cm.kind == CtrlKind::CkEnd));
    }

    #[test]
    fn duplicate_ck_bgn_deduped_by_req_guard() {
        let mut q = proc(0, 4);
        let mut out = Outbox::new();
        q.initiate_checkpoint(&mut out);
        out.clear();
        q.on_ctrl_receive(p(2), CtrlMsg { kind: CtrlKind::CkBgn, csn: 1 }, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        assert_eq!(ctrl_sends(&out).len(), 1);
        out.clear();
        q.on_ctrl_receive(p(3), CtrlMsg { kind: CtrlKind::CkBgn, csn: 1 }, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        assert!(ctrl_sends(&out).is_empty(), "second CK_BGN must not fork the ring");
    }

    #[test]
    fn p0_finalize_broadcasts_ck_end_by_default() {
        // Default config: p0_broadcast_on_finalize = true. P0 finalizing
        // via app traffic still broadcasts CK_END.
        let mut q = proc(0, 2);
        let mut out = Outbox::new();
        q.initiate_checkpoint(&mut out);
        let pb = crate::piggyback::Piggyback {
            csn: 1,
            stat: Status::Tentative,
            tent_set: crate::types::TentSet::singleton(2, p(1)),
        };
        out.clear();
        q.on_app_receive(p(1), MsgId(1), AppPayload { id: 1, len: 0 }, &pb, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        assert_eq!(q.status(), Status::Normal);
        let sends = ctrl_sends(&out);
        assert_eq!(sends, vec![(p(1), CtrlMsg { kind: CtrlKind::CkEnd, csn: 1 })]);
    }

    #[test]
    fn stale_ctrl_ignored_and_jump_is_error() {
        let mut q = proc(2, 4);
        let mut out = Outbox::new();
        q.initiate_checkpoint(&mut out); // csn 1
        out.clear();
        q.on_ctrl_receive(p(0), CtrlMsg { kind: CtrlKind::CkEnd, csn: 0 }, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        assert!(out.is_empty());
        let e = q
            .on_ctrl_receive(p(0), CtrlMsg { kind: CtrlKind::CkReq, csn: 5 }, &mut out)
            .unwrap_err();
        assert!(matches!(e, ProtocolError::CtrlCsnJump { .. }));
        let e = q
            .on_ctrl_receive(p(0), CtrlMsg { kind: CtrlKind::CkEnd, csn: 2 }, &mut out)
            .unwrap_err();
        assert!(matches!(e, ProtocolError::CkEndAhead { .. }));
    }

    /// Full replay of paper Figure 5: P1 initiates, traffic is too sparse,
    /// control messages converge the checkpoint.
    #[test]
    fn fig5_walkthrough() {
        let n = 4;
        let mut procs: Vec<OcptProcess> = (0..4).map(|i| proc(i as u16, n)).collect();
        let mut out = Outbox::new();
        let pl = AppPayload { id: 0, len: 0 };

        // P1 takes CT_{1,1} and sends M2 to P2.
        procs[1].initiate_checkpoint(&mut out);
        out.clear();
        let pb = procs[1].on_app_send(p(2), MsgId(2), pl);
        procs[2]
            .on_app_receive(p(1), MsgId(2), pl, &pb, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        assert_eq!(procs[2].status(), Status::Tentative);
        out.clear();

        // P2 replies (M3), which is how P1 learns P2 has taken CT_{2,1} —
        // the knowledge the paper's narrative relies on when P1 later
        // skips P2 in the CK_REQ ring.
        let pb = procs[2].on_app_send(p(1), MsgId(3), pl);
        procs[1]
            .on_app_receive(p(2), MsgId(3), pl, &pb, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        assert_eq!(procs[1].tent_set().len(), 2); // {P1, P2}
        out.clear();

        // P2's timer would fire but is suppressed (knows P1 < P2).
        procs[2].on_timer(1, &mut out);
        assert!(ctrl_sends(&out).is_empty());
        out.clear();

        // P1's timer fires → CK_BGN to P0.
        procs[1].on_timer(1, &mut out);
        assert_eq!(ctrl_sends(&out), vec![(p(0), CtrlMsg { kind: CtrlKind::CkBgn, csn: 1 })]);
        out.clear();

        // P0 receives CK_BGN(1): one ahead → takes CT_{0,1}, forwards
        // CK_REQ to P1 (it knows only itself).
        procs[0]
            .on_ctrl_receive(p(1), CtrlMsg { kind: CtrlKind::CkBgn, csn: 1 }, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        assert_eq!(procs[0].status(), Status::Tentative);
        assert_eq!(ctrl_sends(&out), vec![(p(1), CtrlMsg { kind: CtrlKind::CkReq, csn: 1 })]);
        out.clear();

        // P1 receives CK_REQ(1): knows P2 is tentative → skips to P3.
        procs[1]
            .on_ctrl_receive(p(0), CtrlMsg { kind: CtrlKind::CkReq, csn: 1 }, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        assert_eq!(ctrl_sends(&out), vec![(p(3), CtrlMsg { kind: CtrlKind::CkReq, csn: 1 })]);
        out.clear();

        // P3 receives CK_REQ(1): one ahead → takes CT_{3,1}, returns token
        // to P0.
        procs[3]
            .on_ctrl_receive(p(1), CtrlMsg { kind: CtrlKind::CkReq, csn: 1 }, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        assert_eq!(procs[3].status(), Status::Tentative);
        assert_eq!(ctrl_sends(&out), vec![(p(0), CtrlMsg { kind: CtrlKind::CkReq, csn: 1 })]);
        out.clear();

        // P0 gets the token back: finalizes C_{0,1} and broadcasts CK_END.
        procs[0]
            .on_ctrl_receive(p(3), CtrlMsg { kind: CtrlKind::CkReq, csn: 1 }, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        assert_eq!(procs[0].status(), Status::Normal);
        let ends = ctrl_sends(&out);
        assert_eq!(ends.iter().filter(|(_, cm)| cm.kind == CtrlKind::CkEnd).count(), 3);
        out.clear();

        // CK_END reaches P1, P2, P3 → all finalize checkpoint 1.
        for i in [1usize, 2, 3] {
            procs[i]
                .on_ctrl_receive(p(0), CtrlMsg { kind: CtrlKind::CkEnd, csn: 1 }, &mut out)
                .expect("scripted Fig. 4/5 replay step must be accepted");
            assert_eq!(procs[i].status(), Status::Normal, "P{i} finalized");
            assert!(out.iter().any(|a| matches!(a, Action::Finalize { csn: 1, .. })));
            out.clear();
        }
        for q in &procs {
            assert_eq!(q.csn(), 1);
            assert_eq!(q.stats().get("ckpt.finalized"), 1);
        }
    }

    #[test]
    fn finalize_log_excludes_nothing_on_ctrl_path() {
        // Messages logged before CK_END must all be flushed.
        let mut q = proc(2, 4);
        let mut out = Outbox::new();
        q.initiate_checkpoint(&mut out);
        q.on_app_send(p(3), MsgId(10), AppPayload { id: 1, len: 8 });
        out.clear();
        q.on_ctrl_receive(p(0), CtrlMsg { kind: CtrlKind::CkEnd, csn: 1 }, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        let log = out
            .iter()
            .find_map(|a| match a {
                Action::Finalize { log, .. } => Some(log.clone()),
                _ => None,
            })
            .expect("scripted Fig. 4/5 replay step must be accepted");
        assert_eq!(log.len(), 1);
        assert_ne!(log, MessageLog::new());
    }
}
