//! The control-message extension (paper §3.5.1, Fig. 4) — the *generalized
//! checkpointing algorithm*.
//!
//! The basic algorithm converges only if application traffic happens to
//! spread status knowledge everywhere; otherwise a tentative checkpoint can
//! sit unfinalized forever (the paper's *convergence problem*). The fix:
//!
//! 1. a timer armed at every tentative checkpoint; on expiry the process
//!    sends `CK_BGN` to `P_0` (suppressed when a smaller-id process is
//!    known to be tentative — §3.5.1 case 1);
//! 2. `P_0` circulates a `CK_REQ` token that makes every process take the
//!    tentative checkpoint, skipping processes already known tentative
//!    (§3.5.1 case 2);
//! 3. when the token returns, `P_0` broadcasts `CK_END`, upon which
//!    everyone finalizes (paper Theorem 1: the generalized algorithm
//!    converges).
//!
//! The timer is cancelled when the checkpoint finalizes or when any
//! control message carrying the current sequence number arrives.
//!
//! ## Hierarchical waves
//!
//! The flat ring is O(N) per round — both the token walk and `P_0`'s
//! `CK_END` fan-out — which caps practical system size. When
//! [`crate::config::ControlTopology`] resolves to a group size, processes
//! shard into contiguous id groups and the wave becomes two-tier:
//!
//! * members alarm their **group leader** (`CK_BGN`), leaders escalate to
//!   `P_0` (both tiers keep the §3.5.1 smaller-id suppression rule);
//! * `P_0` starts one `CK_REQ` ring **per group** (token stays inside the
//!   group); a completed ring is reported to `P_0` as `CK_GRP_DONE`;
//! * once every group reported, `P_0` sends `CK_END` to the leaders, who
//!   relay it to their members.
//!
//! No process sends more than O(group size + #groups) control messages
//! per round; with the default `⌈√N⌉` group size that is O(√N). The flat
//! ring remains both the small-N fast path and the differential oracle —
//! a flat and a grouped run converge on the same recovery line.

use ocpt_sim::ProcessId;

use crate::actions::{Action, Outbox};
use crate::error::ProtocolError;
use crate::protocol::OcptProcess;
use crate::types::{Csn, Status};
use crate::wire::{CtrlKind, CtrlMsg};

impl OcptProcess {
    /// The convergence timer for checkpoint `csn` fired (Fig. 4, "When the
    /// timer for finalizing the tentative checkpoint on P_i expires").
    pub fn on_timer(&mut self, csn: Csn, out: &mut Outbox) {
        // Stale or already-resolved timers are ignored.
        if self.status() != Status::Tentative || self.csn() != csn {
            return;
        }
        self.timer_armed = false;
        self.stats_mut().inc("timer.expired");
        if self.hier_group_size().is_some() {
            self.on_timer_hier(csn, out);
            return;
        }
        if self.id() == ProcessId::P0 {
            // P_0 initiates CK_REQ messages directly.
            self.forward_ck_req(out);
        } else {
            if self.config().optimize_ck_bgn {
                // [OCPT §3.5.1] case 1 (CK_BGN suppression): if some P_j
                // with j < i is known tentative,
                // that process (or a smaller one) will notify P_0.
                if let Some(min) = self.tent_set().min() {
                    if min < self.id() {
                        self.stats_mut().inc("ctrl.bgn_suppressed");
                        self.maybe_rearm(out);
                        return;
                    }
                }
            }
            self.stats_mut().inc("ctrl.bgn_sent");
            out.push(Action::SendCtrl {
                dst: ProcessId::P0,
                cm: CtrlMsg { kind: CtrlKind::CkBgn, csn },
            });
        }
        self.maybe_rearm(out);
    }

    fn maybe_rearm(&mut self, out: &mut Outbox) {
        if self.config().rearm_timer && self.status() == Status::Tentative {
            self.timer_armed = true;
            self.stats_mut().inc("timer.set");
            out.push(Action::SetTimer { csn: self.csn() });
        }
    }

    /// `forwardCheckpointRequest(P_i, CM)` from Fig. 4.
    ///
    /// Chooses the next hop for the `CK_REQ` token:
    /// * a process that has already finalized forwards straight to `P_0`
    ///   (§3.5.1 case 2, "If it has finalized this checkpoint, it forwards
    ///   the message to P_0 directly");
    /// * with the skip optimization, the first `P_k` (`k > i`) *not* known
    ///   tentative; if all higher ids are known tentative, `P_0`;
    /// * without it, simply `P_{i+1}` (wrapping to `P_0`).
    ///
    /// If the chosen hop is `P_0` and we *are* `P_0`, the ring is complete:
    /// broadcast `CK_END` and finalize.
    pub(crate) fn forward_ck_req(&mut self, out: &mut Outbox) {
        // [OCPT §3.5.1] case 2 (CK_REQ skipping): route the ring token past
        // processes already known tentative.
        let csn = self.csn();
        let dst = if self.status() == Status::Normal {
            ProcessId::P0
        } else if self.config().optimize_ck_req {
            self.tent_set().first_absent_above(self.id()).unwrap_or(ProcessId::P0)
        } else {
            ProcessId((self.id().0 + 1) % self.n() as u32)
        };
        self.ck_req_sent_for = Some(csn);
        if dst == ProcessId::P0 && self.id() == ProcessId::P0 {
            // Ring closed at the coordinator without leaving it.
            self.complete_ring(out);
            return;
        }
        self.stats_mut().inc("ctrl.req_sent");
        out.push(Action::SendCtrl { dst, cm: CtrlMsg { kind: CtrlKind::CkReq, csn } });
    }

    /// `P_0` learned that every process has taken the tentative checkpoint:
    /// broadcast `CK_END` (once) and finalize its own checkpoint.
    fn complete_ring(&mut self, out: &mut Outbox) {
        debug_assert_eq!(self.id(), ProcessId::P0);
        if self.ck_end_sent_for != Some(self.csn()) {
            self.broadcast_ck_end(out);
        }
        if self.status() == Status::Tentative {
            self.finalize(out);
        }
    }

    /// Broadcast `CK_END(csn)` along the control topology (once per round).
    ///
    /// Flat: to every other process (Fig. 4). Hierarchical: `P_0` sends to
    /// the other group leaders plus its own group-0 members; a leader
    /// relays to its members only. The relay is what keeps suppression
    /// starvation-free in the two-tier wave — whenever a leader finalizes
    /// `csn` its members hear `CK_END(csn)`, so a stale alarm at an
    /// already-advanced leader can be ignored safely.
    pub(crate) fn broadcast_ck_end(&mut self, out: &mut Outbox) {
        let csn = self.csn();
        if self.ck_end_sent_for == Some(csn) {
            return;
        }
        self.ck_end_sent_for = Some(csn);
        let me = self.id();
        let cm = CtrlMsg { kind: CtrlKind::CkEnd, csn };
        let fanout;
        if self.hier_group_size().is_none() {
            for dst in ProcessId::all(self.n()).filter(|d| *d != me) {
                out.push(Action::SendCtrl { dst, cm });
            }
            fanout = self.n() as u64 - 1;
        } else {
            let mut sent = 0u64;
            if me == ProcessId::P0 {
                for g in 1..self.num_groups() {
                    out.push(Action::SendCtrl { dst: self.leader_of(g), cm });
                    sent += 1;
                }
            }
            if self.is_group_leader() {
                let g = self.group_of(me);
                for id in (me.0 + 1)..self.group_end(g) {
                    out.push(Action::SendCtrl { dst: ProcessId(id), cm });
                    sent += 1;
                }
            }
            fanout = sent;
        }
        self.stats_mut().add("ctrl.end_sent", fanout);
    }

    /// A control message arrived (Fig. 4, "When P_i receives CM from P_j").
    pub fn on_ctrl_receive(
        &mut self,
        src: ProcessId,
        cm: CtrlMsg,
        out: &mut Outbox,
    ) -> Result<(), ProtocolError> {
        let _ = src;
        self.stats_mut().inc("ctrl.received");

        // Timer cancellation rule: "the timer is canceled when … it
        // receives a CM with sequence number equal to that of its current
        // tentative checkpoint."
        if self.status() == Status::Tentative && cm.csn == self.csn() && self.timer_armed {
            self.timer_armed = false;
            out.push(Action::CancelTimer);
        }

        if self.hier_group_size().is_some() {
            return self.on_ctrl_receive_hier(src, cm, out);
        }

        if cm.csn == self.csn() + 1 {
            if cm.kind == CtrlKind::CkEnd {
                // P_0 can only finalize csn+1 after we took tentative csn+1.
                return Err(ProtocolError::CkEndAhead {
                    at: self.id(),
                    ours: self.csn(),
                    theirs: cm.csn,
                });
            }
            // The sender is already at csn+1, so checkpoint csn is fully
            // taken everywhere: finalize ours (if pending), join the new
            // one, and keep the token moving. The timer for the new
            // tentative checkpoint is not armed: this very message is a CM
            // carrying its sequence number, which would cancel it on the
            // spot (Fig. 4's cancellation rule).
            if self.status() == Status::Tentative {
                self.finalize(out);
            }
            self.take_tentative(out, false);
            self.forward_ck_req(out);
            return Ok(());
        }

        if cm.csn == self.csn() {
            match cm.kind {
                CtrlKind::CkBgn => {
                    if self.status() == Status::Tentative {
                        if self.ck_req_sent_for == Some(cm.csn) {
                            return Ok(()); // dedupe (Fig. 4)
                        }
                        self.forward_ck_req(out);
                    } else {
                        // Already finalized: tell everyone (handles the
                        // suppression starvation case).
                        self.broadcast_ck_end(out);
                    }
                }
                CtrlKind::CkReq => {
                    if self.id() == ProcessId::P0 {
                        self.complete_ring(out);
                    } else if self.ck_req_sent_for != Some(cm.csn) {
                        self.forward_ck_req(out);
                    }
                }
                CtrlKind::CkEnd => {
                    if self.status() == Status::Tentative {
                        self.finalize(out);
                    }
                }
                CtrlKind::CkGrpDone => {
                    // Only the hierarchical wave emits these; a flat ring
                    // receiving one is misconfiguration, not corruption.
                    self.stats_mut().inc("ctrl.misrouted_ignored");
                }
            }
            return Ok(());
        }

        if cm.csn < self.csn() {
            // Stale control message from a past checkpoint — ignore.
            self.stats_mut().inc("ctrl.stale_ignored");
            return Ok(());
        }

        // cm.csn > csn + 1: impossible under reliable channels.
        Err(ProtocolError::CtrlCsnJump { at: self.id(), ours: self.csn(), theirs: cm.csn })
    }

    /// Timer expiry under the hierarchical topology: members alarm their
    /// group leader, leaders alarm `P_0`, `P_0` starts the global wave.
    /// The §3.5.1 suppression rule applies *within each tier*: a member
    /// stays quiet when a smaller-id member of its own group is known
    /// tentative; a leader stays quiet when a smaller-id *leader* is.
    fn on_timer_hier(&mut self, csn: Csn, out: &mut Outbox) {
        if self.id() == ProcessId::P0 {
            self.start_global_wave(out);
        } else if self.is_group_leader() {
            if self.config().optimize_ck_bgn {
                let g = self.group_of(self.id());
                for g2 in 0..g {
                    if self.tent_set().contains(self.leader_of(g2)) {
                        // That leader (or a smaller one) will alarm P_0.
                        self.stats_mut().inc("ctrl.bgn_suppressed");
                        self.maybe_rearm(out);
                        return;
                    }
                }
            }
            self.stats_mut().inc("ctrl.bgn_sent");
            out.push(Action::SendCtrl {
                dst: ProcessId::P0,
                cm: CtrlMsg { kind: CtrlKind::CkBgn, csn },
            });
        } else {
            let leader = self.leader_of(self.group_of(self.id()));
            if self.config().optimize_ck_bgn
                && self.tent_set().min_in(leader.0, self.id().0).is_some()
            {
                // A smaller-id tentative member of this group (possibly
                // the leader itself) will raise the alarm.
                self.stats_mut().inc("ctrl.bgn_suppressed");
                self.maybe_rearm(out);
                return;
            }
            self.stats_mut().inc("ctrl.bgn_sent");
            out.push(Action::SendCtrl { dst: leader, cm: CtrlMsg { kind: CtrlKind::CkBgn, csn } });
        }
        self.maybe_rearm(out);
    }

    /// The hierarchical counterpart of the Fig. 4 receive handler. The
    /// csn normalization (one-ahead / current / stale / jump) is identical
    /// to the flat ring; only the kind × role dispatch differs.
    fn on_ctrl_receive_hier(
        &mut self,
        src: ProcessId,
        cm: CtrlMsg,
        out: &mut Outbox,
    ) -> Result<(), ProtocolError> {
        if cm.csn == self.csn() + 1 {
            if cm.kind == CtrlKind::CkEnd {
                return Err(ProtocolError::CkEndAhead {
                    at: self.id(),
                    ours: self.csn(),
                    theirs: cm.csn,
                });
            }
            // The sender is already at csn+1, so checkpoint csn is fully
            // taken everywhere: finalize ours (if pending), join the new
            // round, then handle the message at the now-current csn.
            if self.status() == Status::Tentative {
                self.finalize(out);
            }
            self.take_tentative(out, false);
        } else if cm.csn < self.csn() {
            self.stats_mut().inc("ctrl.stale_ignored");
            return Ok(());
        } else if cm.csn > self.csn() + 1 {
            return Err(ProtocolError::CtrlCsnJump {
                at: self.id(),
                ours: self.csn(),
                theirs: cm.csn,
            });
        }

        match cm.kind {
            CtrlKind::CkBgn => {
                if self.id() == ProcessId::P0 {
                    if self.status() == Status::Tentative {
                        self.start_global_wave(out);
                    } else {
                        // Already finalized: answer reactively so the
                        // alarmer (and everyone under us) can finalize.
                        self.broadcast_ck_end(out);
                    }
                } else if self.is_group_leader() {
                    if self.status() == Status::Tentative {
                        self.escalate_ck_bgn(out);
                    } else {
                        // Finalized: relay CK_END down to our members.
                        self.broadcast_ck_end(out);
                    }
                } else {
                    self.stats_mut().inc("ctrl.misrouted_ignored");
                }
            }
            CtrlKind::CkReq => {
                if self.is_group_leader() {
                    // Either our ring token came home, or we already
                    // finalized (the group is trivially covered): report
                    // the group done. Otherwise start/continue our ring.
                    if self.ck_req_sent_for == Some(self.csn()) || self.status() == Status::Normal {
                        self.report_group_done(out);
                    } else {
                        self.forward_ck_req_in_group(out);
                    }
                } else if self.status() == Status::Normal {
                    // §3.5.1 case 2 analog: a finalized member hands the
                    // token straight back to its leader.
                    let leader = self.leader_of(self.group_of(self.id()));
                    self.stats_mut().inc("ctrl.req_sent");
                    out.push(Action::SendCtrl {
                        dst: leader,
                        cm: CtrlMsg { kind: CtrlKind::CkReq, csn: self.csn() },
                    });
                } else if self.ck_req_sent_for != Some(self.csn()) {
                    self.forward_ck_req_in_group(out);
                }
            }
            CtrlKind::CkEnd => {
                if self.status() == Status::Tentative {
                    // Leaders relay to their members inside finalize
                    // (finalize_excluding broadcasts for P_0 and leaders).
                    self.finalize(out);
                }
            }
            CtrlKind::CkGrpDone => {
                if self.id() == ProcessId::P0 {
                    let g = self.group_of(src);
                    self.mark_group_done(g, out);
                } else {
                    self.stats_mut().inc("ctrl.misrouted_ignored");
                }
            }
        }
        Ok(())
    }

    /// `P_0` launches the two-tier wave (once per round): `CK_REQ` to the
    /// leader of every other group, then its own group-0 ring.
    fn start_global_wave(&mut self, out: &mut Outbox) {
        debug_assert_eq!(self.id(), ProcessId::P0);
        let csn = self.csn();
        if self.ck_req_sent_for == Some(csn) {
            return; // wave already launched for this round
        }
        for g in 1..self.num_groups() {
            self.stats_mut().inc("ctrl.req_sent");
            out.push(Action::SendCtrl {
                dst: self.leader_of(g),
                cm: CtrlMsg { kind: CtrlKind::CkReq, csn },
            });
        }
        // Our own group-0 ring (sets ck_req_sent_for).
        self.forward_ck_req_in_group(out);
    }

    /// The intra-group analog of [`Self::forward_ck_req`]: the token walks
    /// the member ids of this group (skipping known tentatives under the
    /// §3.5.1 case 2 optimization) and returns to the leader. A leader
    /// whose members are all known tentative closes the ring on the spot.
    fn forward_ck_req_in_group(&mut self, out: &mut Outbox) {
        let csn = self.csn();
        let g = self.group_of(self.id());
        let leader = self.leader_of(g);
        let end = self.group_end(g);
        let dst = if self.config().optimize_ck_req {
            self.tent_set().first_absent_in(self.id().0 + 1, end).unwrap_or(leader)
        } else if self.id().0 + 1 < end {
            ProcessId(self.id().0 + 1)
        } else {
            leader
        };
        self.ck_req_sent_for = Some(csn);
        if dst == self.id() {
            // We are the leader and every member is already known
            // tentative: the ring closes without leaving us.
            self.report_group_done(out);
            return;
        }
        self.stats_mut().inc("ctrl.req_sent");
        out.push(Action::SendCtrl { dst, cm: CtrlMsg { kind: CtrlKind::CkReq, csn } });
    }

    /// A leader's group ring completed for the current csn: tell `P_0`
    /// (once). `P_0` reporting its own group records it directly.
    fn report_group_done(&mut self, out: &mut Outbox) {
        if self.id() == ProcessId::P0 {
            self.mark_group_done(0, out);
            return;
        }
        let csn = self.csn();
        if self.grp_done_sent_for == Some(csn) {
            return;
        }
        self.grp_done_sent_for = Some(csn);
        self.stats_mut().inc("ctrl.grp_done_sent");
        out.push(Action::SendCtrl {
            dst: ProcessId::P0,
            cm: CtrlMsg { kind: CtrlKind::CkGrpDone, csn },
        });
    }

    /// `P_0` bookkeeping: group `group`'s ring completed for the current
    /// csn. When every group has reported, the round ends — `CK_END` goes
    /// out along the hierarchy (the analog of [`Self::complete_ring`]).
    fn mark_group_done(&mut self, group: u32, out: &mut Outbox) {
        debug_assert_eq!(self.id(), ProcessId::P0);
        let csn = self.csn();
        let num = self.num_groups() as usize;
        if !matches!(&self.groups_done, Some((c, _, _)) if *c == csn) {
            self.groups_done = Some((csn, vec![false; num], 0));
        }
        let (_, done, count) = self.groups_done.get_or_insert_with(|| (csn, vec![false; num], 0));
        if !done[group as usize] {
            done[group as usize] = true;
            *count += 1;
        }
        let all_done = *count as usize == num;
        if all_done {
            self.broadcast_ck_end(out);
            if self.status() == Status::Tentative {
                self.finalize(out);
            }
        }
    }

    /// A leader learned (via a member's `CK_BGN`) that the round is not
    /// converging: escalate to `P_0`, once per round.
    fn escalate_ck_bgn(&mut self, out: &mut Outbox) {
        let csn = self.csn();
        if self.ck_bgn_sent_for == Some(csn) {
            return;
        }
        self.ck_bgn_sent_for = Some(csn);
        self.stats_mut().inc("ctrl.bgn_sent");
        out.push(Action::SendCtrl {
            dst: ProcessId::P0,
            cm: CtrlMsg { kind: CtrlKind::CkBgn, csn },
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OcptConfig;
    use crate::log::MessageLog;
    use crate::wire::AppPayload;
    use ocpt_sim::MsgId;

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    fn proc_with(i: u32, n: usize, cfg: OcptConfig) -> OcptProcess {
        OcptProcess::new(p(i), n, cfg)
    }

    fn proc(i: u32, n: usize) -> OcptProcess {
        proc_with(i, n, OcptConfig::default())
    }

    fn ctrl_sends(out: &Outbox) -> Vec<(ProcessId, CtrlMsg)> {
        out.iter()
            .filter_map(|a| match a {
                Action::SendCtrl { dst, cm } => Some((*dst, *cm)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn tentative_checkpoint_arms_timer() {
        let mut q = proc(1, 4);
        let mut out = Outbox::new();
        q.initiate_checkpoint(&mut out);
        assert!(out.contains(&Action::SetTimer { csn: 1 }));
    }

    #[test]
    fn timer_expiry_sends_ck_bgn_to_p0() {
        let mut q = proc(2, 4);
        let mut out = Outbox::new();
        q.initiate_checkpoint(&mut out);
        out.clear();
        q.on_timer(1, &mut out);
        assert_eq!(ctrl_sends(&out), vec![(p(0), CtrlMsg { kind: CtrlKind::CkBgn, csn: 1 })]);
    }

    #[test]
    fn stale_timer_ignored() {
        let mut q = proc(2, 4);
        let mut out = Outbox::new();
        q.initiate_checkpoint(&mut out);
        out.clear();
        q.on_timer(0, &mut out); // old csn
        assert!(out.is_empty());
    }

    #[test]
    fn ck_bgn_suppressed_when_smaller_id_known() {
        let mut q = proc(2, 4);
        let mut out = Outbox::new();
        q.initiate_checkpoint(&mut out);
        // Learn that P1 is tentative via an app message.
        let pb = crate::piggyback::Piggyback::new(
            1,
            Status::Tentative,
            crate::types::TentSet::singleton(4, p(1)),
        );
        q.on_app_receive(p(1), MsgId(1), AppPayload { id: 1, len: 0 }, &pb, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        out.clear();
        q.on_timer(1, &mut out);
        assert!(ctrl_sends(&out).is_empty(), "CK_BGN must be suppressed");
        assert_eq!(q.stats().get("ctrl.bgn_suppressed"), 1);
    }

    #[test]
    fn naive_mode_never_suppresses() {
        let mut q = proc_with(2, 4, OcptConfig::naive_control());
        let mut out = Outbox::new();
        q.initiate_checkpoint(&mut out);
        let pb = crate::piggyback::Piggyback::new(
            1,
            Status::Tentative,
            crate::types::TentSet::singleton(4, p(1)),
        );
        q.on_app_receive(p(1), MsgId(1), AppPayload { id: 1, len: 0 }, &pb, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        out.clear();
        q.on_timer(1, &mut out);
        assert_eq!(ctrl_sends(&out).len(), 1);
    }

    #[test]
    fn p0_timer_starts_req_ring() {
        let mut q = proc(0, 4);
        let mut out = Outbox::new();
        q.initiate_checkpoint(&mut out);
        out.clear();
        q.on_timer(1, &mut out);
        // P0 knows only itself tentative → token goes to P1.
        assert_eq!(ctrl_sends(&out), vec![(p(1), CtrlMsg { kind: CtrlKind::CkReq, csn: 1 })]);
    }

    #[test]
    fn req_skip_optimization_skips_known_tentatives() {
        let mut q = proc(0, 5);
        let mut out = Outbox::new();
        q.initiate_checkpoint(&mut out);
        // P0 learns P1 and P2 are tentative.
        let mut ts = crate::types::TentSet::singleton(5, p(1));
        ts.insert(p(2));
        let pb = crate::piggyback::Piggyback::new(1, Status::Tentative, ts);
        q.on_app_receive(p(1), MsgId(1), AppPayload { id: 1, len: 0 }, &pb, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        out.clear();
        q.on_timer(1, &mut out);
        // Token skips P1, P2 and lands on P3.
        assert_eq!(ctrl_sends(&out), vec![(p(3), CtrlMsg { kind: CtrlKind::CkReq, csn: 1 })]);
    }

    #[test]
    fn naive_req_walks_the_full_ring() {
        let mut q = proc_with(0, 5, OcptConfig::naive_control());
        let mut out = Outbox::new();
        q.initiate_checkpoint(&mut out);
        let mut ts = crate::types::TentSet::singleton(5, p(1));
        ts.insert(p(2));
        let pb = crate::piggyback::Piggyback::new(1, Status::Tentative, ts);
        q.on_app_receive(p(1), MsgId(1), AppPayload { id: 1, len: 0 }, &pb, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        out.clear();
        q.on_timer(1, &mut out);
        assert_eq!(ctrl_sends(&out), vec![(p(1), CtrlMsg { kind: CtrlKind::CkReq, csn: 1 })]);
    }

    #[test]
    fn ck_req_one_ahead_takes_checkpoint_and_forwards() {
        // P2 is normal at csn 0; CK_REQ(1) arrives.
        let mut q = proc(2, 4);
        let mut out = Outbox::new();
        q.on_ctrl_receive(p(1), CtrlMsg { kind: CtrlKind::CkReq, csn: 1 }, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        assert_eq!(q.csn(), 1);
        assert_eq!(q.status(), Status::Tentative);
        // Forwards to P3 (knows only itself).
        assert_eq!(ctrl_sends(&out), vec![(p(3), CtrlMsg { kind: CtrlKind::CkReq, csn: 1 })]);
        // No timer armed: this CM would cancel it immediately.
        assert!(!out.contains(&Action::SetTimer { csn: 1 }));
    }

    #[test]
    fn ck_req_one_ahead_finalizes_pending_first() {
        // P2 tentative at csn 1; CK_REQ(2) arrives → finalize 1, take 2.
        let mut q = proc(2, 4);
        let mut out = Outbox::new();
        q.initiate_checkpoint(&mut out);
        out.clear();
        q.on_ctrl_receive(p(1), CtrlMsg { kind: CtrlKind::CkReq, csn: 2 }, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        assert_eq!(q.csn(), 2);
        assert!(out.iter().any(|a| matches!(a, Action::Finalize { csn: 1, .. })));
        assert!(out.iter().any(|a| matches!(a, Action::TakeTentative { csn: 2 })));
    }

    #[test]
    fn last_process_returns_token_to_p0() {
        let mut q = proc(3, 4);
        let mut out = Outbox::new();
        q.on_ctrl_receive(p(2), CtrlMsg { kind: CtrlKind::CkReq, csn: 1 }, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        assert_eq!(ctrl_sends(&out), vec![(p(0), CtrlMsg { kind: CtrlKind::CkReq, csn: 1 })]);
    }

    #[test]
    fn p0_on_token_return_broadcasts_end_and_finalizes() {
        let mut q = proc(0, 4);
        let mut out = Outbox::new();
        q.initiate_checkpoint(&mut out);
        out.clear();
        q.on_ctrl_receive(p(3), CtrlMsg { kind: CtrlKind::CkReq, csn: 1 }, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        let sends = ctrl_sends(&out);
        let ends: Vec<_> = sends.iter().filter(|(_, cm)| cm.kind == CtrlKind::CkEnd).collect();
        assert_eq!(ends.len(), 3); // P1, P2, P3
        assert!(out.iter().any(|a| matches!(a, Action::Finalize { csn: 1, .. })));
        assert_eq!(q.status(), Status::Normal);
        // A second token return must not re-broadcast.
        out.clear();
        q.on_ctrl_receive(p(2), CtrlMsg { kind: CtrlKind::CkReq, csn: 1 }, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        assert!(ctrl_sends(&out).is_empty());
    }

    #[test]
    fn ck_end_finalizes_tentative() {
        let mut q = proc(2, 4);
        let mut out = Outbox::new();
        q.initiate_checkpoint(&mut out);
        out.clear();
        q.on_ctrl_receive(p(0), CtrlMsg { kind: CtrlKind::CkEnd, csn: 1 }, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        assert_eq!(q.status(), Status::Normal);
        assert!(out.iter().any(|a| matches!(a, Action::Finalize { csn: 1, .. })));
        // Duplicate CK_END is harmless.
        out.clear();
        q.on_ctrl_receive(p(0), CtrlMsg { kind: CtrlKind::CkEnd, csn: 1 }, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        assert!(out.is_empty());
    }

    #[test]
    fn ctrl_with_current_csn_cancels_timer() {
        let mut q = proc(2, 4);
        let mut out = Outbox::new();
        q.initiate_checkpoint(&mut out);
        out.clear();
        q.on_ctrl_receive(p(1), CtrlMsg { kind: CtrlKind::CkReq, csn: 1 }, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        assert!(out.contains(&Action::CancelTimer));
    }

    #[test]
    fn ck_bgn_at_finalized_p0_rebroadcasts_end() {
        // P0 finalized csn 1 (normal). A late CK_BGN(1) arrives: P0 must
        // answer with CK_END so the sender can finalize (§3.5.1 case 1 fix).
        let mut q = proc_with(0, 3, OcptConfig::naive_control());
        let mut out = Outbox::new();
        q.initiate_checkpoint(&mut out);
        // Learn everyone took it → finalize.
        let mut ts = crate::types::TentSet::singleton(3, p(1));
        ts.insert(p(2));
        let pb = crate::piggyback::Piggyback::new(1, Status::Tentative, ts);
        q.on_app_receive(p(1), MsgId(1), AppPayload { id: 1, len: 0 }, &pb, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        assert_eq!(q.status(), Status::Normal);
        out.clear();
        q.on_ctrl_receive(p(2), CtrlMsg { kind: CtrlKind::CkBgn, csn: 1 }, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        let ends = ctrl_sends(&out);
        assert_eq!(ends.len(), 2);
        assert!(ends.iter().all(|(_, cm)| cm.kind == CtrlKind::CkEnd));
    }

    #[test]
    fn duplicate_ck_bgn_deduped_by_req_guard() {
        let mut q = proc(0, 4);
        let mut out = Outbox::new();
        q.initiate_checkpoint(&mut out);
        out.clear();
        q.on_ctrl_receive(p(2), CtrlMsg { kind: CtrlKind::CkBgn, csn: 1 }, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        assert_eq!(ctrl_sends(&out).len(), 1);
        out.clear();
        q.on_ctrl_receive(p(3), CtrlMsg { kind: CtrlKind::CkBgn, csn: 1 }, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        assert!(ctrl_sends(&out).is_empty(), "second CK_BGN must not fork the ring");
    }

    #[test]
    fn p0_finalize_broadcasts_ck_end_by_default() {
        // Default config: p0_broadcast_on_finalize = true. P0 finalizing
        // via app traffic still broadcasts CK_END.
        let mut q = proc(0, 2);
        let mut out = Outbox::new();
        q.initiate_checkpoint(&mut out);
        let pb = crate::piggyback::Piggyback::new(
            1,
            Status::Tentative,
            crate::types::TentSet::singleton(2, p(1)),
        );
        out.clear();
        q.on_app_receive(p(1), MsgId(1), AppPayload { id: 1, len: 0 }, &pb, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        assert_eq!(q.status(), Status::Normal);
        let sends = ctrl_sends(&out);
        assert_eq!(sends, vec![(p(1), CtrlMsg { kind: CtrlKind::CkEnd, csn: 1 })]);
    }

    #[test]
    fn stale_ctrl_ignored_and_jump_is_error() {
        let mut q = proc(2, 4);
        let mut out = Outbox::new();
        q.initiate_checkpoint(&mut out); // csn 1
        out.clear();
        q.on_ctrl_receive(p(0), CtrlMsg { kind: CtrlKind::CkEnd, csn: 0 }, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        assert!(out.is_empty());
        let e = q
            .on_ctrl_receive(p(0), CtrlMsg { kind: CtrlKind::CkReq, csn: 5 }, &mut out)
            .unwrap_err();
        assert!(matches!(e, ProtocolError::CtrlCsnJump { .. }));
        let e = q
            .on_ctrl_receive(p(0), CtrlMsg { kind: CtrlKind::CkEnd, csn: 2 }, &mut out)
            .unwrap_err();
        assert!(matches!(e, ProtocolError::CkEndAhead { .. }));
    }

    /// Full replay of paper Figure 5: P1 initiates, traffic is too sparse,
    /// control messages converge the checkpoint.
    #[test]
    fn fig5_walkthrough() {
        let n = 4;
        let mut procs: Vec<OcptProcess> = (0..4).map(|i| proc(i as u32, n)).collect();
        let mut out = Outbox::new();
        let pl = AppPayload { id: 0, len: 0 };

        // P1 takes CT_{1,1} and sends M2 to P2.
        procs[1].initiate_checkpoint(&mut out);
        out.clear();
        let pb = procs[1].on_app_send(p(2), MsgId(2), pl);
        procs[2]
            .on_app_receive(p(1), MsgId(2), pl, &pb, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        assert_eq!(procs[2].status(), Status::Tentative);
        out.clear();

        // P2 replies (M3), which is how P1 learns P2 has taken CT_{2,1} —
        // the knowledge the paper's narrative relies on when P1 later
        // skips P2 in the CK_REQ ring.
        let pb = procs[2].on_app_send(p(1), MsgId(3), pl);
        procs[1]
            .on_app_receive(p(2), MsgId(3), pl, &pb, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        assert_eq!(procs[1].tent_set().len(), 2); // {P1, P2}
        out.clear();

        // P2's timer would fire but is suppressed (knows P1 < P2).
        procs[2].on_timer(1, &mut out);
        assert!(ctrl_sends(&out).is_empty());
        out.clear();

        // P1's timer fires → CK_BGN to P0.
        procs[1].on_timer(1, &mut out);
        assert_eq!(ctrl_sends(&out), vec![(p(0), CtrlMsg { kind: CtrlKind::CkBgn, csn: 1 })]);
        out.clear();

        // P0 receives CK_BGN(1): one ahead → takes CT_{0,1}, forwards
        // CK_REQ to P1 (it knows only itself).
        procs[0]
            .on_ctrl_receive(p(1), CtrlMsg { kind: CtrlKind::CkBgn, csn: 1 }, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        assert_eq!(procs[0].status(), Status::Tentative);
        assert_eq!(ctrl_sends(&out), vec![(p(1), CtrlMsg { kind: CtrlKind::CkReq, csn: 1 })]);
        out.clear();

        // P1 receives CK_REQ(1): knows P2 is tentative → skips to P3.
        procs[1]
            .on_ctrl_receive(p(0), CtrlMsg { kind: CtrlKind::CkReq, csn: 1 }, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        assert_eq!(ctrl_sends(&out), vec![(p(3), CtrlMsg { kind: CtrlKind::CkReq, csn: 1 })]);
        out.clear();

        // P3 receives CK_REQ(1): one ahead → takes CT_{3,1}, returns token
        // to P0.
        procs[3]
            .on_ctrl_receive(p(1), CtrlMsg { kind: CtrlKind::CkReq, csn: 1 }, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        assert_eq!(procs[3].status(), Status::Tentative);
        assert_eq!(ctrl_sends(&out), vec![(p(0), CtrlMsg { kind: CtrlKind::CkReq, csn: 1 })]);
        out.clear();

        // P0 gets the token back: finalizes C_{0,1} and broadcasts CK_END.
        procs[0]
            .on_ctrl_receive(p(3), CtrlMsg { kind: CtrlKind::CkReq, csn: 1 }, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        assert_eq!(procs[0].status(), Status::Normal);
        let ends = ctrl_sends(&out);
        assert_eq!(ends.iter().filter(|(_, cm)| cm.kind == CtrlKind::CkEnd).count(), 3);
        out.clear();

        // CK_END reaches P1, P2, P3 → all finalize checkpoint 1.
        for i in [1usize, 2, 3] {
            procs[i]
                .on_ctrl_receive(p(0), CtrlMsg { kind: CtrlKind::CkEnd, csn: 1 }, &mut out)
                .expect("scripted Fig. 4/5 replay step must be accepted");
            assert_eq!(procs[i].status(), Status::Normal, "P{i} finalized");
            assert!(out.iter().any(|a| matches!(a, Action::Finalize { csn: 1, .. })));
            out.clear();
        }
        for q in &procs {
            assert_eq!(q.csn(), 1);
            assert_eq!(q.stats().get("ckpt.finalized"), 1);
        }
    }

    // ---- hierarchical (two-tier) wave -------------------------------

    /// N = 9, groups of 3: {0,1,2} {3,4,5} {6,7,8}; leaders 0, 3, 6.
    fn hier_cfg() -> OcptConfig {
        OcptConfig {
            control_topology: crate::config::ControlTopology::Grouped { group_size: 3 },
            ..OcptConfig::default()
        }
    }

    fn hier_proc(i: u32) -> OcptProcess {
        proc_with(i, 9, hier_cfg())
    }

    #[test]
    fn hier_member_alarms_its_leader() {
        let mut q = hier_proc(4);
        let mut out = Outbox::new();
        q.initiate_checkpoint(&mut out);
        out.clear();
        q.on_timer(1, &mut out);
        assert_eq!(ctrl_sends(&out), vec![(p(3), CtrlMsg { kind: CtrlKind::CkBgn, csn: 1 })]);
    }

    #[test]
    fn hier_member_suppressed_by_smaller_group_mate() {
        let mut q = hier_proc(5);
        let mut out = Outbox::new();
        q.initiate_checkpoint(&mut out);
        let pb = crate::piggyback::Piggyback::new(
            1,
            Status::Tentative,
            crate::types::TentSet::singleton(9, p(4)),
        );
        q.on_app_receive(p(4), MsgId(1), AppPayload { id: 1, len: 0 }, &pb, &mut out)
            .expect("scripted hier replay step must be accepted");
        out.clear();
        q.on_timer(1, &mut out);
        assert!(ctrl_sends(&out).is_empty(), "CK_BGN must be suppressed inside the group");
        assert_eq!(q.stats().get("ctrl.bgn_suppressed"), 1);
    }

    #[test]
    fn hier_member_not_suppressed_by_other_group() {
        // P4 knows P1 (group 0) is tentative — irrelevant to its own
        // group, so it still alarms its leader.
        let mut q = hier_proc(4);
        let mut out = Outbox::new();
        q.initiate_checkpoint(&mut out);
        let pb = crate::piggyback::Piggyback::new(
            1,
            Status::Tentative,
            crate::types::TentSet::singleton(9, p(1)),
        );
        q.on_app_receive(p(1), MsgId(1), AppPayload { id: 1, len: 0 }, &pb, &mut out)
            .expect("scripted hier replay step must be accepted");
        out.clear();
        q.on_timer(1, &mut out);
        assert_eq!(ctrl_sends(&out), vec![(p(3), CtrlMsg { kind: CtrlKind::CkBgn, csn: 1 })]);
    }

    #[test]
    fn hier_leader_escalates_once() {
        let mut q = hier_proc(3);
        let mut out = Outbox::new();
        q.on_ctrl_receive(p(4), CtrlMsg { kind: CtrlKind::CkBgn, csn: 1 }, &mut out)
            .expect("scripted hier replay step must be accepted");
        assert_eq!(q.status(), Status::Tentative, "one-ahead CK_BGN makes the leader join");
        assert_eq!(ctrl_sends(&out), vec![(p(0), CtrlMsg { kind: CtrlKind::CkBgn, csn: 1 })]);
        out.clear();
        q.on_ctrl_receive(p(5), CtrlMsg { kind: CtrlKind::CkBgn, csn: 1 }, &mut out)
            .expect("scripted hier replay step must be accepted");
        assert!(ctrl_sends(&out).is_empty(), "second member alarm must not re-escalate");
    }

    #[test]
    fn hier_leader_suppressed_by_smaller_leader() {
        let mut q = hier_proc(6);
        let mut out = Outbox::new();
        q.initiate_checkpoint(&mut out);
        let pb = crate::piggyback::Piggyback::new(
            1,
            Status::Tentative,
            crate::types::TentSet::singleton(9, p(3)),
        );
        q.on_app_receive(p(3), MsgId(1), AppPayload { id: 1, len: 0 }, &pb, &mut out)
            .expect("scripted hier replay step must be accepted");
        out.clear();
        q.on_timer(1, &mut out);
        assert!(ctrl_sends(&out).is_empty(), "leader CK_BGN suppressed by smaller leader");
    }

    #[test]
    fn hier_p0_wave_fans_out_to_leaders_and_own_ring() {
        let mut q = hier_proc(0);
        let mut out = Outbox::new();
        q.initiate_checkpoint(&mut out);
        out.clear();
        q.on_timer(1, &mut out);
        let sends = ctrl_sends(&out);
        // CK_REQ to leaders P3 and P6, plus the group-0 ring token to P1.
        let mut dsts: Vec<u32> = sends.iter().map(|(d, _)| d.0).collect();
        dsts.sort_unstable();
        assert_eq!(dsts, vec![1, 3, 6]);
        assert!(sends.iter().all(|(_, cm)| cm.kind == CtrlKind::CkReq && cm.csn == 1));
        // A duplicate alarm must not launch a second wave.
        out.clear();
        q.on_ctrl_receive(p(3), CtrlMsg { kind: CtrlKind::CkBgn, csn: 1 }, &mut out)
            .expect("scripted hier replay step must be accepted");
        assert!(ctrl_sends(&out).is_empty());
    }

    #[test]
    fn hier_group_ring_returns_to_leader_then_reports() {
        // Leader P3 gets the wave token: ring P3 → P4 → P5 → P3, then
        // CK_GRP_DONE to P0.
        let mut l = hier_proc(3);
        let mut m4 = hier_proc(4);
        let mut m5 = hier_proc(5);
        let mut out = Outbox::new();
        l.on_ctrl_receive(p(0), CtrlMsg { kind: CtrlKind::CkReq, csn: 1 }, &mut out)
            .expect("scripted hier replay step must be accepted");
        assert_eq!(ctrl_sends(&out), vec![(p(4), CtrlMsg { kind: CtrlKind::CkReq, csn: 1 })]);
        out.clear();
        m4.on_ctrl_receive(p(3), CtrlMsg { kind: CtrlKind::CkReq, csn: 1 }, &mut out)
            .expect("scripted hier replay step must be accepted");
        assert_eq!(ctrl_sends(&out), vec![(p(5), CtrlMsg { kind: CtrlKind::CkReq, csn: 1 })]);
        out.clear();
        m5.on_ctrl_receive(p(4), CtrlMsg { kind: CtrlKind::CkReq, csn: 1 }, &mut out)
            .expect("scripted hier replay step must be accepted");
        assert_eq!(ctrl_sends(&out), vec![(p(3), CtrlMsg { kind: CtrlKind::CkReq, csn: 1 })]);
        out.clear();
        l.on_ctrl_receive(p(5), CtrlMsg { kind: CtrlKind::CkReq, csn: 1 }, &mut out)
            .expect("scripted hier replay step must be accepted");
        assert_eq!(ctrl_sends(&out), vec![(p(0), CtrlMsg { kind: CtrlKind::CkGrpDone, csn: 1 })]);
        // The report is deduplicated.
        out.clear();
        l.on_ctrl_receive(p(5), CtrlMsg { kind: CtrlKind::CkReq, csn: 1 }, &mut out)
            .expect("scripted hier replay step must be accepted");
        assert!(ctrl_sends(&out).is_empty());
    }

    #[test]
    fn hier_p0_ends_round_after_all_groups_report() {
        let mut q = hier_proc(0);
        let mut out = Outbox::new();
        q.initiate_checkpoint(&mut out);
        out.clear();
        q.on_timer(1, &mut out); // launch the wave
        out.clear();
        // Own ring returns.
        q.on_ctrl_receive(p(2), CtrlMsg { kind: CtrlKind::CkReq, csn: 1 }, &mut out)
            .expect("scripted hier replay step must be accepted");
        assert!(ctrl_sends(&out).is_empty(), "1/3 groups done — no CK_END yet");
        q.on_ctrl_receive(p(3), CtrlMsg { kind: CtrlKind::CkGrpDone, csn: 1 }, &mut out)
            .expect("scripted hier replay step must be accepted");
        assert!(ctrl_sends(&out).is_empty(), "2/3 groups done — no CK_END yet");
        q.on_ctrl_receive(p(6), CtrlMsg { kind: CtrlKind::CkGrpDone, csn: 1 }, &mut out)
            .expect("scripted hier replay step must be accepted");
        let sends = ctrl_sends(&out);
        let mut dsts: Vec<u32> =
            sends.iter().filter(|(_, cm)| cm.kind == CtrlKind::CkEnd).map(|(d, _)| d.0).collect();
        dsts.sort_unstable();
        // CK_END to its own members (1, 2) and the other leaders (3, 6).
        assert_eq!(dsts, vec![1, 2, 3, 6]);
        assert_eq!(q.status(), Status::Normal);
        // A late duplicate report must not re-broadcast.
        out.clear();
        q.on_ctrl_receive(p(3), CtrlMsg { kind: CtrlKind::CkGrpDone, csn: 1 }, &mut out)
            .expect("scripted hier replay step must be accepted");
        assert!(ctrl_sends(&out).is_empty());
    }

    #[test]
    fn hier_leader_relays_ck_end_to_members() {
        let mut q = hier_proc(6);
        let mut out = Outbox::new();
        q.initiate_checkpoint(&mut out);
        out.clear();
        q.on_ctrl_receive(p(0), CtrlMsg { kind: CtrlKind::CkEnd, csn: 1 }, &mut out)
            .expect("scripted hier replay step must be accepted");
        assert_eq!(q.status(), Status::Normal);
        let mut dsts: Vec<u32> = ctrl_sends(&out).iter().map(|(d, _)| d.0).collect();
        dsts.sort_unstable();
        assert_eq!(dsts, vec![7, 8], "leader must relay CK_END to its members");
    }

    /// End-to-end two-tier wave: P4 alarms, the wave reaches all 9
    /// processes, everyone finalizes csn 1 — and nobody's control fan-out
    /// exceeds O(group size + #groups).
    #[test]
    fn hier_wave_converges_all_nine() {
        let n = 9;
        let mut procs: Vec<OcptProcess> = (0..n as u32).map(hier_proc).collect();
        let mut out = Outbox::new();
        procs[4].initiate_checkpoint(&mut out);
        out.clear();
        procs[4].on_timer(1, &mut out);
        let mut queue: Vec<(ProcessId, ProcessId, CtrlMsg)> =
            ctrl_sends(&out).into_iter().map(|(d, cm)| (p(4), d, cm)).collect();
        let mut hops = 0u32;
        while let Some((src, dst, cm)) = queue.pop() {
            hops += 1;
            assert!(hops < 200, "wave must terminate");
            out.clear();
            procs[dst.0 as usize]
                .on_ctrl_receive(src, cm, &mut out)
                .expect("scripted hier replay step must be accepted");
            queue.extend(ctrl_sends(&out).into_iter().map(|(d, m)| (dst, d, m)));
        }
        for (i, q) in procs.iter().enumerate() {
            assert_eq!(q.csn(), 1, "P{i} csn");
            assert_eq!(q.status(), Status::Normal, "P{i} finalized");
            // Per-process fan-out bound: 2·(group size + #groups) — here
            // P0's worst case is 3 CK_REQ + 4 CK_END = 7. With the √N
            // grouping this is O(√N), vs the flat ring's O(N).
            let sent = q.stats().get("ctrl.req_sent")
                + q.stats().get("ctrl.bgn_sent")
                + q.stats().get("ctrl.grp_done_sent")
                + q.stats().get("ctrl.end_sent");
            assert!(sent <= 2 * (3 + 3), "P{i} sent {sent} control messages");
            if i == 0 {
                assert_eq!(sent, 7, "P0: 3 CK_REQ + 4 CK_END");
            }
        }
    }

    #[test]
    fn finalize_log_excludes_nothing_on_ctrl_path() {
        // Messages logged before CK_END must all be flushed.
        let mut q = proc(2, 4);
        let mut out = Outbox::new();
        q.initiate_checkpoint(&mut out);
        q.on_app_send(p(3), MsgId(10), AppPayload { id: 1, len: 8 });
        out.clear();
        q.on_ctrl_receive(p(0), CtrlMsg { kind: CtrlKind::CkEnd, csn: 1 }, &mut out)
            .expect("scripted Fig. 4/5 replay step must be accepted");
        let log = out
            .iter()
            .find_map(|a| match a {
                Action::Finalize { log, .. } => Some(log.clone()),
                _ => None,
            })
            .expect("scripted Fig. 4/5 replay step must be accepted");
        assert_eq!(log.len(), 1);
        assert_ne!(log, MessageLog::new());
    }
}
