//! Actions — the protocol's side of the sans-io contract.
//!
//! The state machine in [`crate::protocol`] never performs I/O. Every
//! handler appends [`Action`]s to a caller-supplied buffer; the driver
//! (simulator harness or threaded runtime) executes them: snapshotting
//! application state, writing to stable storage, sending control messages,
//! arming timers. This keeps the algorithm identical across substrates and
//! makes every paper case unit-testable without a network.

use ocpt_sim::ProcessId;

use crate::log::MessageLog;
use crate::types::Csn;
use crate::wire::CtrlMsg;

/// An effect the driver must carry out.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Snapshot the application state as tentative checkpoint `csn`
    /// (`CT_{i,csn}`). The driver stores it per the configured
    /// [`crate::config::FlushPolicy`].
    TakeTentative {
        /// The new checkpoint sequence number.
        csn: Csn,
    },
    /// Finalize checkpoint `csn`: flush the message log (and the tentative
    /// checkpoint, if not already durable) to stable storage. The log
    /// handed over already excludes the trigger message where the paper
    /// requires `logSet_i - {M}`.
    Finalize {
        /// The sequence number being finalized.
        csn: Csn,
        /// The frozen message log `logSet_{i,csn}`.
        log: MessageLog,
        /// When the finalization was triggered by receiving a message `M`
        /// that the paper excludes from the flushed log (`logSet_i - {M}`,
        /// sub-cases (3b)/(2c)), this is `M`'s id. The checkpoint's
        /// consistency cut then sits *before* `receive(M)` — the paper's
        /// `CFE_{i,k} -hb-> receive(M)` ordering in Theorem 2 Case 2.
        excluded: Option<ocpt_sim::MsgId>,
    },
    /// Send a control message to `dst`.
    SendCtrl {
        /// Destination process.
        dst: ProcessId,
        /// The control message.
        cm: CtrlMsg,
    },
    /// Arm the convergence timer for checkpoint `csn`.
    SetTimer {
        /// The checkpoint the timer guards.
        csn: Csn,
    },
    /// Cancel the convergence timer.
    CancelTimer,
}

impl Action {
    /// True for actions that touch stable storage (used by tests).
    pub fn is_storage(&self) -> bool {
        matches!(self, Action::Finalize { .. })
    }
}

/// Convenience alias for the action buffer handlers append to.
pub type Outbox = Vec<Action>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::CtrlKind;

    #[test]
    fn storage_classification() {
        assert!(Action::Finalize { csn: 1, log: MessageLog::new(), excluded: None }.is_storage());
        assert!(!Action::TakeTentative { csn: 1 }.is_storage());
        assert!(!Action::SendCtrl {
            dst: ProcessId(0),
            cm: CtrlMsg { kind: CtrlKind::CkBgn, csn: 1 }
        }
        .is_storage());
    }
}
