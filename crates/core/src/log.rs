//! The message log `logSet_{i,k}` (paper §3.1, §3.3).
//!
//! After taking a tentative checkpoint `CT_{i,k}`, a process logs **every
//! application message it sends or receives** until the checkpoint is
//! finalized. The checkpoint is the pair `C_{i,k} = CT_{i,k} ∪
//! logSet_{i,k}`: on recovery the state is restored from `CT_{i,k}` and the
//! logged *received* messages are replayed (piecewise determinism, Johnson
//! & Zwaenepoel \[4\]); the logged *sent* messages allow regenerating
//! in-transit messages that the rolled-back receiver never processed.
//!
//! "Selective" is the point: only the window between `CT` and finalization
//! is logged, not the whole execution — experiment E5 quantifies the
//! difference against an always-log ablation. Since the strategy matrix
//! landed (see [`crate::strategy`]) the same container also serves the
//! other logging disciplines, which need three extensions the selective
//! policy never uses:
//!
//! * an [`EntryKind`] per entry — full [`EntryKind::Payload`] vs. a
//!   metadata-only [`EntryKind::Determinant`];
//! * a *replay-window* mark: continuous strategies keep one log across
//!   the Normal era and the tentative window, and
//!   [`MessageLog::mark_replay_start`] records where `CT` fell inside it;
//! * an optional frozen vector clock — the causal-compressed strategy
//!   stamps each finalized log with the clock at `CFE_{i,k}`.
//!
//! The durable encoding is bivalent: a log that uses none of the
//! extensions (every selective log) encodes in the original format,
//! byte-identical to the pre-strategy code; any extension flips the count
//! header's top bit and switches to the extended layout. The decoder
//! accepts both and rejects a non-canonical choice.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use ocpt_causality::VClock;
use ocpt_sim::{MsgId, ProcessId};

use crate::wire::AppPayload;

/// Whether a logged message was sent or received by the log's owner.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// The owner sent it.
    Sent,
    /// The owner received (and processed) it.
    Received,
}

/// What one log entry holds: the full payload or only its metadata.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EntryKind {
    /// Metadata plus the payload bytes — replayable from this log alone.
    Payload,
    /// Metadata only (peer, message id, payload identity and size); the
    /// payload bytes are durable elsewhere (or nowhere — the orphan case
    /// E10 counts).
    Determinant,
}

/// One logged message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LogEntry {
    /// Sent or received.
    pub dir: Direction,
    /// Full payload or determinant.
    pub kind: EntryKind,
    /// The other endpoint.
    pub peer: ProcessId,
    /// Network-assigned message identity.
    pub msg_id: MsgId,
    /// The payload (identity + declared size). A determinant keeps the
    /// identity and size for accounting and in-sim replay, but its
    /// [`LogEntry::flush_bytes`] exclude the payload bytes.
    pub payload: AppPayload,
}

/// Encoded size of one entry's metadata (dir/kind + peer + msg_id +
/// payload id/len).
pub const ENTRY_META_BYTES: u64 = 1 + 4 + 8 + 8 + 4;

impl LogEntry {
    /// A full-payload entry (the selective policy's only kind).
    pub fn payload(dir: Direction, peer: ProcessId, msg_id: MsgId, payload: AppPayload) -> Self {
        LogEntry { dir, kind: EntryKind::Payload, peer, msg_id, payload }
    }

    /// A metadata-only determinant entry.
    pub fn determinant(
        dir: Direction,
        peer: ProcessId,
        msg_id: MsgId,
        payload: AppPayload,
    ) -> Self {
        LogEntry { dir, kind: EntryKind::Determinant, peer, msg_id, payload }
    }

    /// Bytes this entry contributes to a durable flush: metadata, plus the
    /// payload itself for [`EntryKind::Payload`] entries (received
    /// messages must be replayable bit-for-bit from a payload log).
    pub fn flush_bytes(&self) -> u64 {
        match self.kind {
            EntryKind::Payload => ENTRY_META_BYTES + self.payload.len as u64,
            EntryKind::Determinant => ENTRY_META_BYTES,
        }
    }
}

/// The in-memory message log of one unfinalized tentative checkpoint (and,
/// for continuous strategies, the Normal-era traffic before it).
// [OCPT §3.3] logSet_i — the selective-log half of C_{i,k} = CT_{i,k} ∪
// logSet_{i,k}; populated only between taking CT and finalizing it under
// the paper's policy, continuously under sender-/receiver-based logging.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MessageLog {
    entries: Vec<LogEntry>,
    /// Index of the first entry inside the replay window (at/after `CT`).
    /// Always 0 for tentative-window strategies.
    replay_from: usize,
    /// The vector clock frozen at `CFE_{i,k}` (causal-compressed only).
    clock: Option<VClock>,
}

/// Top bit of the count header: set when the extended durable layout
/// (entry kinds / replay window / frozen clock) is in use.
const EXT_COUNT_FLAG: u32 = 0x8000_0000;
/// Extended-layout flag byte: a frozen clock follows the header.
const EXT_HAS_CLOCK: u8 = 0b1;

impl MessageLog {
    /// An empty log (`logSet_i = ∅`, reset at every tentative checkpoint).
    pub fn new() -> Self {
        MessageLog::default()
    }

    /// Append an entry.
    pub fn push(&mut self, e: LogEntry) {
        self.entries.push(e);
    }

    /// Number of logged messages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries in log order.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Mark the replay-window start at the current end of the log:
    /// everything already logged happened before `CT` (its effects are in
    /// the tentative snapshot) and must not be replayed on top of it.
    pub fn mark_replay_start(&mut self) {
        self.replay_from = self.entries.len();
    }

    /// Index of the first replay-window entry.
    pub fn replay_from(&self) -> usize {
        self.replay_from
    }

    /// The entries inside the replay window (at/after `CT`), in log order.
    pub fn replay_entries(&self) -> &[LogEntry] {
        &self.entries[self.replay_from..]
    }

    /// Freeze the vector clock at finalization (causal-compressed only).
    pub fn set_clock(&mut self, clock: VClock) {
        self.clock = Some(clock);
    }

    /// The frozen finalization-time clock, if this log carries one.
    pub fn clock(&self) -> Option<&VClock> {
        self.clock.as_ref()
    }

    /// Remove the entry for `msg_id` if present (the paper's
    /// `logSet_i - {M}` when the finalization trigger must be excluded).
    /// Returns true if an entry was removed.
    pub fn exclude(&mut self, msg_id: MsgId) -> bool {
        self.take(msg_id).is_some()
    }

    /// Remove and return the entry for `msg_id` if present — `exclude`
    /// when the caller re-logs the trigger into the next epoch's log
    /// (continuous strategies).
    pub fn take(&mut self, msg_id: MsgId) -> Option<LogEntry> {
        let pos = self.entries.iter().rposition(|e| e.msg_id == msg_id)?;
        if pos < self.replay_from {
            self.replay_from -= 1;
        }
        Some(self.entries.remove(pos))
    }

    /// Total bytes a durable flush of this log occupies.
    pub fn flush_bytes(&self) -> u64 {
        self.entries.iter().map(LogEntry::flush_bytes).sum()
    }

    /// The received entries, in arrival order.
    pub fn received(&self) -> impl Iterator<Item = &LogEntry> {
        self.entries.iter().filter(|e| e.dir == Direction::Received)
    }

    /// The sent entries, in send order — candidates for re-send during
    /// recovery of in-transit messages.
    pub fn sent(&self) -> impl Iterator<Item = &LogEntry> {
        self.entries.iter().filter(|e| e.dir == Direction::Sent)
    }

    /// True iff this log uses none of the extended-layout features and so
    /// encodes in the original (pre-strategy) durable format.
    fn legacy_layout(&self) -> bool {
        self.replay_from == 0
            && self.clock.is_none()
            && self.entries.iter().all(|e| e.kind == EntryKind::Payload)
    }

    /// Exact byte length of [`MessageLog::encode`]'s output — what the
    /// finalize-write storage accounting charges for the log.
    pub fn encoded_len(&self) -> u64 {
        if self.legacy_layout() {
            4 + self.flush_bytes()
        } else {
            let clock_bytes = match &self.clock {
                Some(c) => 4 + 8 * c.len() as u64,
                None => 0,
            };
            4 + 1 + 4 + clock_bytes + self.flush_bytes()
        }
    }

    /// Encode for durable storage. Payload filler bytes are materialised so
    /// the encoding length equals [`MessageLog::encoded_len`] (which is the
    /// original `4 + flush_bytes` for legacy-layout logs).
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(self.encoded_len() as usize);
        debug_assert!((self.entries.len() as u64) < EXT_COUNT_FLAG as u64, "log count overflow");
        if self.legacy_layout() {
            b.put_u32(self.entries.len() as u32);
        } else {
            b.put_u32(self.entries.len() as u32 | EXT_COUNT_FLAG);
            b.put_u8(match &self.clock {
                Some(_) => EXT_HAS_CLOCK,
                None => 0,
            });
            b.put_u32(self.replay_from as u32);
            if let Some(c) = &self.clock {
                b.put_u32(c.len() as u32);
                for &v in c.components() {
                    b.put_u64(v);
                }
            }
        }
        for e in &self.entries {
            // One byte carries direction and kind: bit 0 = direction,
            // bit 1 = determinant. Legacy logs only emit 0/1, matching the
            // original dir-only byte exactly.
            let dir_bit = match e.dir {
                Direction::Sent => 0u8,
                Direction::Received => 1u8,
            };
            let kind_bit = match e.kind {
                EntryKind::Payload => 0u8,
                EntryKind::Determinant => 2u8,
            };
            b.put_u8(dir_bit | kind_bit);
            b.put_u32(e.peer.0);
            b.put_u64(e.msg_id.0);
            b.put_u64(e.payload.id);
            b.put_u32(e.payload.len);
            if e.kind == EntryKind::Payload {
                b.extend(std::iter::repeat_n(0u8, e.payload.len as usize));
            }
        }
        b.freeze()
    }

    /// Decode a log previously produced by [`MessageLog::encode`]. Both
    /// layouts are accepted; an extended-flagged buffer that a canonical
    /// encoder would have written as legacy is rejected, as is any
    /// truncation, unknown tag or trailing junk.
    pub fn decode(mut buf: Bytes) -> Option<MessageLog> {
        if buf.len() < 4 {
            return None;
        }
        let header = buf.get_u32();
        let extended = header & EXT_COUNT_FLAG != 0;
        let count = (header & !EXT_COUNT_FLAG) as usize;
        let mut log = MessageLog::new();
        if extended {
            if buf.len() < 5 {
                return None;
            }
            let flags = buf.get_u8();
            if flags & !EXT_HAS_CLOCK != 0 {
                return None;
            }
            let replay_from = buf.get_u32() as usize;
            if replay_from > count {
                return None;
            }
            log.replay_from = replay_from;
            if flags & EXT_HAS_CLOCK != 0 {
                if buf.len() < 4 {
                    return None;
                }
                let n = buf.get_u32() as usize;
                if buf.len() < 8 * n {
                    return None;
                }
                log.clock = Some(VClock::from_components((0..n).map(|_| buf.get_u64()).collect()));
            }
        }
        for _ in 0..count {
            if buf.len() < ENTRY_META_BYTES as usize {
                return None;
            }
            let tag = buf.get_u8();
            let (dir, kind) = match tag {
                0 => (Direction::Sent, EntryKind::Payload),
                1 => (Direction::Received, EntryKind::Payload),
                2 if extended => (Direction::Sent, EntryKind::Determinant),
                3 if extended => (Direction::Received, EntryKind::Determinant),
                _ => return None,
            };
            let peer = ProcessId(buf.get_u32());
            let msg_id = MsgId(buf.get_u64());
            let id = buf.get_u64();
            let len = buf.get_u32();
            if kind == EntryKind::Payload {
                if buf.len() < len as usize {
                    return None;
                }
                buf.advance(len as usize);
            }
            log.push(LogEntry { dir, kind, peer, msg_id, payload: AppPayload { id, len } });
        }
        if buf.has_remaining() {
            return None;
        }
        if extended && log.legacy_layout() {
            // A canonical encoder would have written this as legacy.
            return None;
        }
        Some(log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(dir: Direction, peer: u32, msg: u64, len: u32) -> LogEntry {
        LogEntry::payload(dir, ProcessId(peer), MsgId(msg), AppPayload { id: msg * 10, len })
    }

    fn det(dir: Direction, peer: u32, msg: u64, len: u32) -> LogEntry {
        LogEntry::determinant(dir, ProcessId(peer), MsgId(msg), AppPayload { id: msg * 10, len })
    }

    #[test]
    fn push_len_entries() {
        let mut l = MessageLog::new();
        assert!(l.is_empty());
        l.push(entry(Direction::Sent, 1, 5, 64));
        l.push(entry(Direction::Received, 2, 6, 32));
        assert_eq!(l.len(), 2);
        assert_eq!(l.received().count(), 1);
        assert_eq!(l.sent().count(), 1);
    }

    #[test]
    fn exclude_removes_by_msg_id() {
        let mut l = MessageLog::new();
        l.push(entry(Direction::Received, 1, 5, 10));
        l.push(entry(Direction::Received, 2, 6, 10));
        assert!(l.exclude(MsgId(5)));
        assert_eq!(l.len(), 1);
        assert_eq!(l.entries()[0].msg_id, MsgId(6));
        assert!(!l.exclude(MsgId(5)));
    }

    #[test]
    fn exclude_removes_latest_duplicate() {
        // msg ids are unique in practice; if not, the most recent goes.
        let mut l = MessageLog::new();
        l.push(entry(Direction::Sent, 1, 5, 1));
        l.push(entry(Direction::Received, 2, 5, 2));
        assert!(l.exclude(MsgId(5)));
        assert_eq!(l.entries()[0].dir, Direction::Sent);
    }

    #[test]
    fn exclude_before_window_shifts_replay_start() {
        let mut l = MessageLog::new();
        l.push(entry(Direction::Received, 1, 5, 1));
        l.push(entry(Direction::Received, 2, 6, 1));
        l.mark_replay_start();
        l.push(entry(Direction::Received, 3, 7, 1));
        assert_eq!(l.replay_entries().len(), 1);
        // Removing a pre-window entry keeps the same window contents.
        assert!(l.exclude(MsgId(5)));
        assert_eq!(l.replay_from(), 1);
        let ids: Vec<u64> = l.replay_entries().iter().map(|e| e.msg_id.0).collect();
        assert_eq!(ids, vec![7]);
        // Removing an in-window entry leaves the start alone.
        assert!(l.exclude(MsgId(7)));
        assert_eq!(l.replay_from(), 1);
        assert!(l.replay_entries().is_empty());
    }

    #[test]
    fn take_returns_the_entry() {
        let mut l = MessageLog::new();
        l.push(det(Direction::Received, 2, 9, 4));
        let e = l.take(MsgId(9)).expect("entry was just pushed");
        assert_eq!(e.kind, EntryKind::Determinant);
        assert!(l.is_empty());
        assert_eq!(l.take(MsgId(9)), None);
    }

    #[test]
    fn flush_bytes_accounts_payloads() {
        let mut l = MessageLog::new();
        l.push(entry(Direction::Sent, 1, 5, 100));
        l.push(entry(Direction::Received, 2, 6, 50));
        assert_eq!(l.flush_bytes(), 2 * ENTRY_META_BYTES + 150);
    }

    #[test]
    fn determinants_flush_metadata_only() {
        let mut l = MessageLog::new();
        l.push(det(Direction::Received, 1, 5, 100));
        l.push(entry(Direction::Received, 2, 6, 50));
        assert_eq!(l.flush_bytes(), 2 * ENTRY_META_BYTES + 50);
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut l = MessageLog::new();
        l.push(entry(Direction::Sent, 1, 5, 100));
        l.push(entry(Direction::Received, 2, 6, 0));
        l.push(entry(Direction::Received, 3, 7, 33));
        let enc = l.encode();
        assert_eq!(enc.len() as u64, 4 + l.flush_bytes());
        assert_eq!(enc.len() as u64, l.encoded_len());
        let dec = MessageLog::decode(enc).expect("log round-trip must decode");
        assert_eq!(dec, l);
    }

    #[test]
    fn legacy_layout_is_byte_identical_to_original_format() {
        // An all-payload, window-at-zero, clock-free log must encode in
        // the exact pre-strategy byte layout: u32 count, then per entry a
        // dir byte (0/1), peer, msg_id, payload id/len and len filler.
        let mut l = MessageLog::new();
        l.push(entry(Direction::Sent, 3, 5, 2));
        let enc = l.encode();
        let mut want = BytesMut::new();
        want.put_u32(1);
        want.put_u8(0); // Sent, Payload
        want.put_u32(3);
        want.put_u64(5);
        want.put_u64(50);
        want.put_u32(2);
        want.put_u8(0);
        want.put_u8(0);
        assert_eq!(enc, want.freeze());
    }

    #[test]
    fn extended_round_trip_with_window_kinds_and_clock() {
        let mut l = MessageLog::new();
        l.push(entry(Direction::Sent, 1, 5, 100));
        l.push(det(Direction::Received, 2, 6, 64));
        l.mark_replay_start();
        l.push(det(Direction::Received, 3, 7, 32));
        l.push(entry(Direction::Sent, 2, 8, 16));
        let mut c = VClock::zero(4);
        c.tick(ProcessId(0));
        c.tick(ProcessId(2));
        c.tick(ProcessId(2));
        l.set_clock(c);
        let enc = l.encode();
        assert_eq!(enc.len() as u64, l.encoded_len());
        let dec = MessageLog::decode(enc).expect("extended log round-trip must decode");
        assert_eq!(dec, l);
        assert_eq!(dec.replay_from(), 2);
        assert_eq!(dec.clock().map(|c| c.get(ProcessId(2))), Some(2));
    }

    #[test]
    fn extended_without_clock_round_trips() {
        let mut l = MessageLog::new();
        l.push(det(Direction::Sent, 1, 5, 100));
        let enc = l.encode();
        assert_eq!(enc.len() as u64, l.encoded_len());
        let dec = MessageLog::decode(enc).expect("determinant log must decode");
        assert_eq!(dec, l);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(MessageLog::decode(Bytes::from_static(&[1, 2])).is_none());
        let mut l = MessageLog::new();
        l.push(entry(Direction::Sent, 1, 5, 10));
        let enc = l.encode();
        assert!(MessageLog::decode(enc.slice(0..enc.len() - 1)).is_none());
        // Trailing junk rejected.
        let mut with_junk = BytesMut::from(&enc[..]);
        with_junk.put_u8(0xFF);
        assert!(MessageLog::decode(with_junk.freeze()).is_none());
        // Determinant tags are extended-layout only.
        let mut raw = BytesMut::from(&enc[..]);
        raw[4] = 2;
        assert!(MessageLog::decode(raw.freeze()).is_none());
    }

    #[test]
    fn decode_rejects_non_canonical_extended() {
        // A legacy-eligible log written with the extended flag must not
        // decode: canonical encoders never produce it.
        let mut l = MessageLog::new();
        l.push(entry(Direction::Sent, 1, 5, 0));
        let legacy = l.encode();
        let mut raw = BytesMut::new();
        raw.put_u32(1 | EXT_COUNT_FLAG);
        raw.put_u8(0);
        raw.put_u32(0);
        raw.extend_from_slice(&legacy[4..]);
        assert!(MessageLog::decode(raw.freeze()).is_none());
        // Bad flag bits and out-of-range replay_from also rejected.
        let mut l = MessageLog::new();
        l.push(det(Direction::Sent, 1, 5, 0));
        let enc = l.encode();
        let mut raw = BytesMut::from(&enc[..]);
        raw[4] |= 0x80;
        assert!(MessageLog::decode(raw.clone().freeze()).is_none());
        let mut raw = BytesMut::from(&enc[..]);
        raw[8] = 9; // replay_from > count
        assert!(MessageLog::decode(raw.freeze()).is_none());
    }

    #[test]
    fn empty_log_round_trips() {
        let l = MessageLog::new();
        let dec = MessageLog::decode(l.encode()).expect("log round-trip must decode");
        assert!(dec.is_empty());
    }

    #[test]
    fn replay_order_is_arrival_order() {
        let mut l = MessageLog::new();
        l.push(entry(Direction::Received, 1, 9, 1));
        l.push(entry(Direction::Sent, 1, 10, 1));
        l.push(entry(Direction::Received, 2, 8, 1));
        let order: Vec<u64> = l.received().map(|e| e.msg_id.0).collect();
        assert_eq!(order, vec![9, 8]);
    }
}
