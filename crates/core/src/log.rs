//! The selective message log `logSet_{i,k}` (paper §3.1, §3.3).
//!
//! After taking a tentative checkpoint `CT_{i,k}`, a process logs **every
//! application message it sends or receives** until the checkpoint is
//! finalized. The checkpoint is the pair `C_{i,k} = CT_{i,k} ∪
//! logSet_{i,k}`: on recovery the state is restored from `CT_{i,k}` and the
//! logged *received* messages are replayed (piecewise determinism, Johnson
//! & Zwaenepoel \[4\]); the logged *sent* messages allow regenerating
//! in-transit messages that the rolled-back receiver never processed.
//!
//! "Selective" is the point: only the window between `CT` and finalization
//! is logged, not the whole execution — experiment E5 quantifies the
//! difference against an always-log ablation.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use ocpt_sim::{MsgId, ProcessId};

use crate::wire::AppPayload;

/// Whether a logged message was sent or received by the log's owner.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// The owner sent it.
    Sent,
    /// The owner received (and processed) it.
    Received,
}

/// One logged message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LogEntry {
    /// Sent or received.
    pub dir: Direction,
    /// The other endpoint.
    pub peer: ProcessId,
    /// Network-assigned message identity.
    pub msg_id: MsgId,
    /// The payload (identity + declared size).
    pub payload: AppPayload,
}

/// Encoded size of one entry's metadata (dir + peer + msg_id + payload id/len).
pub const ENTRY_META_BYTES: u64 = 1 + 4 + 8 + 8 + 4;

impl LogEntry {
    /// Bytes this entry contributes to a durable flush: metadata plus the
    /// payload itself (received messages must be replayable bit-for-bit).
    pub fn flush_bytes(&self) -> u64 {
        ENTRY_META_BYTES + self.payload.len as u64
    }
}

/// The in-memory message log of one unfinalized tentative checkpoint.
// [OCPT §3.3] logSet_i — the selective-log half of C_{i,k} = CT_{i,k} ∪
// logSet_{i,k}; populated only between taking CT and finalizing it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MessageLog {
    entries: Vec<LogEntry>,
}

impl MessageLog {
    /// An empty log (`logSet_i = ∅`, reset at every tentative checkpoint).
    pub fn new() -> Self {
        MessageLog::default()
    }

    /// Append an entry.
    pub fn push(&mut self, e: LogEntry) {
        self.entries.push(e);
    }

    /// Number of logged messages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries in log order.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Remove the entry for `msg_id` if present (the paper's
    /// `logSet_i - {M}` when the finalization trigger must be excluded).
    /// Returns true if an entry was removed.
    pub fn exclude(&mut self, msg_id: MsgId) -> bool {
        if let Some(pos) = self.entries.iter().rposition(|e| e.msg_id == msg_id) {
            self.entries.remove(pos);
            true
        } else {
            false
        }
    }

    /// Total bytes a durable flush of this log occupies.
    pub fn flush_bytes(&self) -> u64 {
        self.entries.iter().map(LogEntry::flush_bytes).sum()
    }

    /// The received entries, in arrival order — the replay schedule.
    pub fn received(&self) -> impl Iterator<Item = &LogEntry> {
        self.entries.iter().filter(|e| e.dir == Direction::Received)
    }

    /// The sent entries, in send order — candidates for re-send during
    /// recovery of in-transit messages.
    pub fn sent(&self) -> impl Iterator<Item = &LogEntry> {
        self.entries.iter().filter(|e| e.dir == Direction::Sent)
    }

    /// Encode for durable storage. Payload filler bytes are materialised so
    /// the encoding length equals [`MessageLog::flush_bytes`] plus a small
    /// count header.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(4 + self.flush_bytes() as usize);
        b.put_u32(self.entries.len() as u32);
        for e in &self.entries {
            b.put_u8(match e.dir {
                Direction::Sent => 0,
                Direction::Received => 1,
            });
            b.put_u32(e.peer.0);
            b.put_u64(e.msg_id.0);
            b.put_u64(e.payload.id);
            b.put_u32(e.payload.len);
            b.extend(std::iter::repeat_n(0u8, e.payload.len as usize));
        }
        b.freeze()
    }

    /// Decode a log previously produced by [`MessageLog::encode`].
    pub fn decode(mut buf: Bytes) -> Option<MessageLog> {
        if buf.len() < 4 {
            return None;
        }
        let count = buf.get_u32() as usize;
        let mut log = MessageLog::new();
        for _ in 0..count {
            if buf.len() < ENTRY_META_BYTES as usize {
                return None;
            }
            let dir = match buf.get_u8() {
                0 => Direction::Sent,
                1 => Direction::Received,
                _ => return None,
            };
            let peer = ProcessId(buf.get_u32());
            let msg_id = MsgId(buf.get_u64());
            let id = buf.get_u64();
            let len = buf.get_u32();
            if buf.len() < len as usize {
                return None;
            }
            buf.advance(len as usize);
            log.push(LogEntry { dir, peer, msg_id, payload: AppPayload { id, len } });
        }
        if buf.has_remaining() {
            return None;
        }
        Some(log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(dir: Direction, peer: u32, msg: u64, len: u32) -> LogEntry {
        LogEntry {
            dir,
            peer: ProcessId(peer),
            msg_id: MsgId(msg),
            payload: AppPayload { id: msg * 10, len },
        }
    }

    #[test]
    fn push_len_entries() {
        let mut l = MessageLog::new();
        assert!(l.is_empty());
        l.push(entry(Direction::Sent, 1, 5, 64));
        l.push(entry(Direction::Received, 2, 6, 32));
        assert_eq!(l.len(), 2);
        assert_eq!(l.received().count(), 1);
        assert_eq!(l.sent().count(), 1);
    }

    #[test]
    fn exclude_removes_by_msg_id() {
        let mut l = MessageLog::new();
        l.push(entry(Direction::Received, 1, 5, 10));
        l.push(entry(Direction::Received, 2, 6, 10));
        assert!(l.exclude(MsgId(5)));
        assert_eq!(l.len(), 1);
        assert_eq!(l.entries()[0].msg_id, MsgId(6));
        assert!(!l.exclude(MsgId(5)));
    }

    #[test]
    fn exclude_removes_latest_duplicate() {
        // msg ids are unique in practice; if not, the most recent goes.
        let mut l = MessageLog::new();
        l.push(entry(Direction::Sent, 1, 5, 1));
        l.push(entry(Direction::Received, 2, 5, 2));
        assert!(l.exclude(MsgId(5)));
        assert_eq!(l.entries()[0].dir, Direction::Sent);
    }

    #[test]
    fn flush_bytes_accounts_payloads() {
        let mut l = MessageLog::new();
        l.push(entry(Direction::Sent, 1, 5, 100));
        l.push(entry(Direction::Received, 2, 6, 50));
        assert_eq!(l.flush_bytes(), 2 * ENTRY_META_BYTES + 150);
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut l = MessageLog::new();
        l.push(entry(Direction::Sent, 1, 5, 100));
        l.push(entry(Direction::Received, 2, 6, 0));
        l.push(entry(Direction::Received, 3, 7, 33));
        let enc = l.encode();
        assert_eq!(enc.len() as u64, 4 + l.flush_bytes());
        let dec = MessageLog::decode(enc).expect("log round-trip must decode");
        assert_eq!(dec, l);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(MessageLog::decode(Bytes::from_static(&[1, 2])).is_none());
        let mut l = MessageLog::new();
        l.push(entry(Direction::Sent, 1, 5, 10));
        let enc = l.encode();
        assert!(MessageLog::decode(enc.slice(0..enc.len() - 1)).is_none());
        // Trailing junk rejected.
        let mut with_junk = BytesMut::from(&enc[..]);
        with_junk.put_u8(0xFF);
        assert!(MessageLog::decode(with_junk.freeze()).is_none());
    }

    #[test]
    fn empty_log_round_trips() {
        let l = MessageLog::new();
        let dec = MessageLog::decode(l.encode()).expect("log round-trip must decode");
        assert!(dec.is_empty());
    }

    #[test]
    fn replay_order_is_arrival_order() {
        let mut l = MessageLog::new();
        l.push(entry(Direction::Received, 1, 9, 1));
        l.push(entry(Direction::Sent, 1, 10, 1));
        l.push(entry(Direction::Received, 2, 8, 1));
        let order: Vec<u64> = l.received().map(|e| e.msg_id.0).collect();
        assert_eq!(order, vec![9, 8]);
    }
}
