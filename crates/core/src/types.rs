//! Core protocol types: sequence numbers, process status and the tentative
//! process set (paper §3.3).

use std::cell::Cell;
use std::fmt;
use std::sync::Arc;

use ocpt_sim::ProcessId;

thread_local! {
    /// Per-thread count of [`TentSet`] storage deep-copies (copy-on-write
    /// faults). The message-send hot path must never bump this:
    /// piggybacking a tentSet is a refcount clone, and only genuine
    /// mutations of a *shared* set copy. Thread-local so a simulation
    /// thread (runs are single-threaded) observes exactly its own copies,
    /// however many grid workers run beside it.
    static TENT_SET_DEEP_COPIES: Cell<u64> = const { Cell::new(0) };
}

/// Checkpoint sequence number (the paper's `csn`). The initial checkpoint
/// of every process has sequence number 0.
pub type Csn = u64;

/// Status of a process (paper §3.3, `stat_i`).
///
/// * `Normal` — no outstanding tentative checkpoint.
/// * `Tentative` — a tentative checkpoint has been taken and not yet
///   finalized; all messages sent and received are being logged.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Status {
    /// No outstanding tentative checkpoint.
    Normal,
    /// Holding an unfinalized tentative checkpoint; logging messages.
    Tentative,
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Status::Normal => write!(f, "normal"),
            Status::Tentative => write!(f, "tentative"),
        }
    }
}

/// The tentative process set `tentSet_i`: which processes are known (to the
/// holder) to have taken a tentative checkpoint with the current sequence
/// number.
///
/// Represented as a bitset so the piggyback cost is `⌈N/8⌉` bytes — this is
/// exactly what experiment E6 measures. Union (`merge`) is the only
/// combining operation the algorithm needs.
///
/// Storage is a shared `Arc<[u64]>` with copy-on-write mutation: cloning a
/// `TentSet` (which the protocol does on **every** application send, to
/// build the piggyback) is a refcount bump, and the underlying words are
/// copied only when a shared set is actually mutated — i.e. when a
/// tentative checkpoint is taken or a merge learns new members.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TentSet {
    n: u16,
    bits: Arc<[u64]>,
}

impl TentSet {
    /// The empty set over `n` processes.
    pub fn empty(n: usize) -> Self {
        assert!(n >= 1 && n <= u16::MAX as usize, "bad process count");
        TentSet { n: n as u16, bits: vec![0u64; n.div_ceil(64)].into() }
    }

    /// Unique access to the word storage, copying it first if shared.
    fn bits_mut(&mut self) -> &mut [u64] {
        if Arc::get_mut(&mut self.bits).is_none() {
            TENT_SET_DEEP_COPIES.with(|c| c.set(c.get() + 1));
            self.bits = Arc::from(&*self.bits);
        }
        Arc::get_mut(&mut self.bits).expect("unique after copy-on-write")
    }

    /// True when both sets share the same physical storage (refcount
    /// siblings). Diagnostic for the zero-copy piggyback invariant.
    pub fn shares_storage(a: &TentSet, b: &TentSet) -> bool {
        Arc::ptr_eq(&a.bits, &b.bits)
    }

    /// Copy-on-write deep copies performed on the calling thread so far
    /// (all sets). Compare before/after a code region to assert it never
    /// copies tentSet storage.
    pub fn deep_copies() -> u64 {
        TENT_SET_DEEP_COPIES.with(Cell::get)
    }

    /// The singleton `{pid}` over `n` processes.
    pub fn singleton(n: usize, pid: ProcessId) -> Self {
        let mut s = Self::empty(n);
        s.insert(pid);
        s
    }

    /// Number of processes in the system (the universe size, not the
    /// cardinality).
    pub fn universe(&self) -> usize {
        self.n as usize
    }

    /// Insert a process.
    pub fn insert(&mut self, pid: ProcessId) {
        assert!(pid.0 < self.n, "pid out of range");
        if self.contains(pid) {
            return; // Already present: no mutation, no copy-on-write fault.
        }
        self.bits_mut()[pid.index() / 64] |= 1u64 << (pid.index() % 64);
    }

    /// Membership test.
    pub fn contains(&self, pid: ProcessId) -> bool {
        pid.0 < self.n && self.bits[pid.index() / 64] & (1u64 << (pid.index() % 64)) != 0
    }

    /// In-place union (`tentSet_i = tentSet_i ∪ M.tentSet`).
    pub fn merge(&mut self, other: &TentSet) {
        assert_eq!(self.n, other.n, "tentSet universe mismatch");
        if Arc::ptr_eq(&self.bits, &other.bits) {
            return; // Same storage: union is the identity.
        }
        // Copy-on-write only when the union actually adds members — once a
        // round's knowledge saturates, merges stop allocating entirely.
        let adds = self.bits.iter().zip(other.bits.iter()).any(|(a, b)| a & b != *b);
        if !adds {
            return;
        }
        for (a, b) in self.bits_mut().iter_mut().zip(other.bits.iter()) {
            *a |= *b;
        }
    }

    /// Cardinality.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no process is in the set.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// The paper's `tentSet_i == allPSet` test: every process has taken a
    /// tentative checkpoint with this sequence number.
    pub fn is_full(&self) -> bool {
        self.len() == self.n as usize
    }

    /// Iterate members in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = ProcessId> + '_ {
        (0..self.n).map(ProcessId).filter(move |p| self.contains(*p))
    }

    /// The smallest member, if any. Used by the CK_BGN suppression rule
    /// (§3.5.1 case 1).
    pub fn min(&self) -> Option<ProcessId> {
        self.iter().next()
    }

    /// The first process with id `> from` that is **not** in the set, if
    /// any. Used by the CK_REQ forwarding rule (§3.5.1 case 2).
    pub fn first_absent_above(&self, from: ProcessId) -> Option<ProcessId> {
        ((from.0 + 1)..self.n).map(ProcessId).find(|p| !self.contains(*p))
    }

    /// Encoded size on the wire: `⌈N/8⌉` bytes.
    pub fn wire_bytes(&self) -> usize {
        (self.n as usize).div_ceil(8)
    }

    /// Serialize into a byte vector (little-endian bitmap, `wire_bytes` long).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.wire_bytes()];
        for (i, byte) in out.iter_mut().enumerate() {
            let word = self.bits[i / 8];
            *byte = ((word >> ((i % 8) * 8)) & 0xFF) as u8;
        }
        out
    }

    /// Deserialize from `to_bytes` output.
    pub fn from_bytes(n: usize, data: &[u8]) -> Option<Self> {
        let mut s = Self::empty(n);
        if data.len() != s.wire_bytes() {
            return None;
        }
        // Freshly allocated storage is unique: no copy-on-write fault here.
        let bits = s.bits_mut();
        for (i, &byte) in data.iter().enumerate() {
            bits[i / 8] |= (byte as u64) << ((i % 8) * 8);
        }
        // Reject set bits beyond the universe.
        if s.iter().count() != s.len() {
            return None;
        }
        Some(s)
    }
}

impl fmt::Debug for TentSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, p) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u16) -> ProcessId {
        ProcessId(i)
    }

    #[test]
    fn empty_and_singleton() {
        let e = TentSet::empty(5);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let s = TentSet::singleton(5, p(3));
        assert!(s.contains(p(3)));
        assert!(!s.contains(p(2)));
        assert_eq!(s.len(), 1);
        assert!(!s.is_full());
    }

    #[test]
    fn merge_is_union() {
        let mut a = TentSet::singleton(4, p(0));
        let b = TentSet::singleton(4, p(2));
        a.merge(&b);
        assert!(a.contains(p(0)) && a.contains(p(2)));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn full_detection() {
        let mut s = TentSet::empty(3);
        for i in 0..3 {
            assert!(!s.is_full());
            s.insert(p(i));
        }
        assert!(s.is_full());
    }

    #[test]
    fn min_and_first_absent() {
        let mut s = TentSet::empty(6);
        s.insert(p(1));
        s.insert(p(2));
        s.insert(p(4));
        assert_eq!(s.min(), Some(p(1)));
        assert_eq!(s.first_absent_above(p(1)), Some(p(3)));
        assert_eq!(s.first_absent_above(p(3)), Some(p(5)));
        assert_eq!(s.first_absent_above(p(5)), None);
        // All above present → None.
        s.insert(p(3));
        s.insert(p(5));
        assert_eq!(s.first_absent_above(p(0)), None);
    }

    #[test]
    fn wire_size_scales_with_n() {
        assert_eq!(TentSet::empty(4).wire_bytes(), 1);
        assert_eq!(TentSet::empty(8).wire_bytes(), 1);
        assert_eq!(TentSet::empty(9).wire_bytes(), 2);
        assert_eq!(TentSet::empty(256).wire_bytes(), 32);
    }

    #[test]
    fn byte_round_trip() {
        let mut s = TentSet::empty(77);
        for i in [0u16, 5, 63, 64, 76] {
            s.insert(p(i));
        }
        let bytes = s.to_bytes();
        assert_eq!(bytes.len(), s.wire_bytes());
        let d = TentSet::from_bytes(77, &bytes).expect("tentSet round-trip must decode");
        assert_eq!(d, s);
    }

    #[test]
    fn from_bytes_rejects_bad_input() {
        assert!(TentSet::from_bytes(9, &[0xFF]).is_none()); // wrong length
                                                            // Bit 7 set for a universe of 7 → out-of-range bit.
        assert!(TentSet::from_bytes(7, &[0x80]).is_none());
    }

    #[test]
    fn iter_ascending() {
        let mut s = TentSet::empty(100);
        s.insert(p(70));
        s.insert(p(3));
        s.insert(p(64));
        let v: Vec<u16> = s.iter().map(|q| q.0).collect();
        assert_eq!(v, vec![3, 64, 70]);
    }

    #[test]
    fn large_universe() {
        let mut s = TentSet::empty(1000);
        for i in 0..1000 {
            s.insert(p(i));
        }
        assert!(s.is_full());
        assert_eq!(s.wire_bytes(), 125);
    }

    #[test]
    #[should_panic]
    fn universe_mismatch_panics() {
        let mut a = TentSet::empty(3);
        let b = TentSet::empty(4);
        a.merge(&b);
    }

    #[test]
    fn clone_shares_storage_until_mutated() {
        let a = TentSet::singleton(64, p(7));
        let b = a.clone();
        assert!(TentSet::shares_storage(&a, &b), "clone must be a refcount bump");
        let before = TentSet::deep_copies();
        let mut c = a.clone();
        c.insert(p(8)); // First mutation of a shared set: one copy.
        assert_eq!(TentSet::deep_copies(), before + 1);
        assert!(!TentSet::shares_storage(&a, &c));
        assert!(a.contains(p(7)) && !a.contains(p(8)), "original untouched");
        assert!(c.contains(p(7)) && c.contains(p(8)));
        // b was never mutated: still sharing.
        assert!(TentSet::shares_storage(&a, &b));
    }

    #[test]
    fn redundant_mutations_never_copy() {
        let a = TentSet::singleton(64, p(3));
        let mut b = a.clone();
        let before = TentSet::deep_copies();
        b.insert(p(3)); // Already present.
        b.merge(&a); // Same storage.
        let sub = TentSet::singleton(64, p(3));
        b.merge(&sub); // Different storage, but adds nothing.
        assert_eq!(TentSet::deep_copies(), before, "no-op mutations must not copy");
        assert!(TentSet::shares_storage(&a, &b));
    }

    #[test]
    fn equality_and_hash_are_by_content() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let a = TentSet::singleton(40, p(5));
        let mut b = TentSet::empty(40);
        b.insert(p(5));
        assert!(!TentSet::shares_storage(&a, &b));
        assert_eq!(a, b);
        let hash = |s: &TentSet| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
    }
}
