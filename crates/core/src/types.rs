//! Core protocol types: sequence numbers, process status and the tentative
//! process set (paper §3.3).

use std::cell::Cell;
use std::fmt;
use std::sync::Arc;

use ocpt_sim::ProcessId;

thread_local! {
    /// Per-thread count of [`TentSet`] storage deep-copies (copy-on-write
    /// faults). The message-send hot path must never bump this:
    /// piggybacking a tentSet is a refcount clone, and only genuine
    /// mutations of a *shared* set copy. Thread-local so a simulation
    /// thread (runs are single-threaded) observes exactly its own copies,
    /// however many grid workers run beside it.
    static TENT_SET_DEEP_COPIES: Cell<u64> = const { Cell::new(0) };
}

/// Checkpoint sequence number (the paper's `csn`). The initial checkpoint
/// of every process has sequence number 0.
pub type Csn = u64;

/// Status of a process (paper §3.3, `stat_i`).
///
/// * `Normal` — no outstanding tentative checkpoint.
/// * `Tentative` — a tentative checkpoint has been taken and not yet
///   finalized; all messages sent and received are being logged.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Status {
    /// No outstanding tentative checkpoint.
    Normal,
    /// Holding an unfinalized tentative checkpoint; logging messages.
    Tentative,
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Status::Normal => write!(f, "normal"),
            Status::Tentative => write!(f, "tentative"),
        }
    }
}

/// Wire tag of the dense-bitmap tentSet encoding.
pub const TENTSET_TAG_DENSE: u8 = 0;
/// Wire tag of the sparse id-list tentSet encoding.
pub const TENTSET_TAG_SPARSE: u8 = 1;
/// Wire tag of the interval-run tentSet encoding.
pub const TENTSET_TAG_RUNS: u8 = 2;

/// Byte width of one id (or run length) on the wire for a universe of `n`:
/// two bytes cover ids up to 65 535, larger systems use four.
fn id_width(n: u32) -> usize {
    if n <= 65_536 {
        2
    } else {
        4
    }
}

/// The tentative process set `tentSet_i`: which processes are known (to the
/// holder) to have taken a tentative checkpoint with the current sequence
/// number.
///
/// In memory the set is always a dense bitset (`Arc<[u64]>` words) so that
/// membership, union and the control-layer scans stay O(1)/O(words). On the
/// **wire** the encoding is adaptive — experiment E6/`exp_scale` measure
/// exactly this cost. [`TentSet::to_bytes`] picks the smallest of three
/// self-describing representations (1-byte tag first):
///
/// * `0` dense bitmap — `⌈N/8⌉` bytes, the fallback;
/// * `1` sparse id-list — `u32` count + sorted ids, wins early in a round
///   when few processes are tentative;
/// * `2` interval runs — `u32` count + `(start, len-1)` pairs, wins for the
///   contiguous waves a `CK_REQ` sweep produces.
///
/// Storage is a shared `Arc<[u64]>` with copy-on-write mutation: cloning a
/// `TentSet` (which the protocol does on **every** application send, to
/// build the piggyback) is a refcount bump, and the underlying words are
/// copied only when a shared set is actually mutated — i.e. when a
/// tentative checkpoint is taken or a merge learns new members.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TentSet {
    n: u32,
    bits: Arc<[u64]>,
}

impl TentSet {
    /// The empty set over `n` processes. Panics when `n` is 0 or exceeds
    /// `u32::MAX`; use [`TentSet::try_new`] for a checked build.
    pub fn empty(n: usize) -> Self {
        Self::try_new(n).expect("bad process count")
    }

    /// Checked constructor: the empty set over `n` processes, or `None`
    /// when `n` is 0 or exceeds the `u32` id space.
    pub fn try_new(n: usize) -> Option<Self> {
        if n < 1 || n > u32::MAX as usize {
            return None;
        }
        Some(TentSet { n: n as u32, bits: vec![0u64; n.div_ceil(64)].into() })
    }

    /// Unique access to the word storage, copying it first if shared.
    fn bits_mut(&mut self) -> &mut [u64] {
        if Arc::get_mut(&mut self.bits).is_none() {
            TENT_SET_DEEP_COPIES.with(|c| c.set(c.get() + 1));
            self.bits = Arc::from(&*self.bits);
        }
        Arc::get_mut(&mut self.bits).expect("unique after copy-on-write")
    }

    /// True when both sets share the same physical storage (refcount
    /// siblings). Diagnostic for the zero-copy piggyback invariant.
    pub fn shares_storage(a: &TentSet, b: &TentSet) -> bool {
        Arc::ptr_eq(&a.bits, &b.bits)
    }

    /// Copy-on-write deep copies performed on the calling thread so far
    /// (all sets). Compare before/after a code region to assert it never
    /// copies tentSet storage.
    pub fn deep_copies() -> u64 {
        TENT_SET_DEEP_COPIES.with(Cell::get)
    }

    /// The singleton `{pid}` over `n` processes.
    pub fn singleton(n: usize, pid: ProcessId) -> Self {
        let mut s = Self::empty(n);
        s.insert(pid);
        s
    }

    /// Number of processes in the system (the universe size, not the
    /// cardinality).
    pub fn universe(&self) -> usize {
        self.n as usize
    }

    /// Insert a process.
    pub fn insert(&mut self, pid: ProcessId) {
        assert!(pid.0 < self.n, "pid out of range");
        if self.contains(pid) {
            return; // Already present: no mutation, no copy-on-write fault.
        }
        self.bits_mut()[pid.index() / 64] |= 1u64 << (pid.index() % 64);
    }

    /// Membership test.
    pub fn contains(&self, pid: ProcessId) -> bool {
        pid.0 < self.n && self.bits[pid.index() / 64] & (1u64 << (pid.index() % 64)) != 0
    }

    /// In-place union (`tentSet_i = tentSet_i ∪ M.tentSet`).
    pub fn merge(&mut self, other: &TentSet) {
        assert_eq!(self.n, other.n, "tentSet universe mismatch");
        if Arc::ptr_eq(&self.bits, &other.bits) {
            return; // Same storage: union is the identity.
        }
        // Copy-on-write only when the union actually adds members — once a
        // round's knowledge saturates, merges stop allocating entirely.
        let adds = self.bits.iter().zip(other.bits.iter()).any(|(a, b)| a & b != *b);
        if !adds {
            return;
        }
        for (a, b) in self.bits_mut().iter_mut().zip(other.bits.iter()) {
            *a |= *b;
        }
    }

    /// Cardinality.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no process is in the set.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// The paper's `tentSet_i == allPSet` test: every process has taken a
    /// tentative checkpoint with this sequence number.
    pub fn is_full(&self) -> bool {
        self.len() == self.n as usize
    }

    /// Iterate members in ascending id order (word-at-a-time bit scan).
    pub fn iter(&self) -> TentSetIter<'_> {
        TentSetIter { bits: &self.bits, word: 0, cur: self.bits.first().copied().unwrap_or(0) }
    }

    /// The smallest member, if any. Used by the CK_BGN suppression rule
    /// (§3.5.1 case 1).
    pub fn min(&self) -> Option<ProcessId> {
        self.bits
            .iter()
            .position(|&w| w != 0)
            .map(|wi| ProcessId(wi as u32 * 64 + self.bits[wi].trailing_zeros()))
    }

    /// The smallest member with id in `[lo, hi)`, if any. Used by the
    /// per-group CK_BGN suppression rule of the hierarchical control layer.
    pub fn min_in(&self, lo: u32, hi: u32) -> Option<ProcessId> {
        let hi = hi.min(self.n);
        if lo >= hi {
            return None;
        }
        let mut wi = (lo / 64) as usize;
        let mut mask = !0u64 << (lo % 64);
        while (wi as u64) * 64 < hi as u64 {
            let present = self.bits[wi] & mask;
            if present != 0 {
                let bit = wi as u32 * 64 + present.trailing_zeros();
                return (bit < hi).then_some(ProcessId(bit));
            }
            mask = !0u64;
            wi += 1;
        }
        None
    }

    /// The first process with id `> from` that is **not** in the set, if
    /// any. Used by the CK_REQ forwarding rule (§3.5.1 case 2).
    pub fn first_absent_above(&self, from: ProcessId) -> Option<ProcessId> {
        self.first_absent_in(from.0.checked_add(1)?, self.n)
    }

    /// The first process with id in `[lo, hi)` that is **not** in the set,
    /// if any. Word-level scan — the hierarchical CK_REQ ring uses this to
    /// route the token within one group without touching the other words.
    pub fn first_absent_in(&self, lo: u32, hi: u32) -> Option<ProcessId> {
        let hi = hi.min(self.n);
        if lo >= hi {
            return None;
        }
        let mut wi = (lo / 64) as usize;
        let mut mask = !0u64 << (lo % 64);
        while (wi as u64) * 64 < hi as u64 {
            let absent = !self.bits[wi] & mask;
            if absent != 0 {
                let bit = wi as u32 * 64 + absent.trailing_zeros();
                return (bit < hi).then_some(ProcessId(bit));
            }
            mask = !0u64;
            wi += 1;
        }
        None
    }

    /// Number of maximal runs of consecutive members.
    fn run_count(&self) -> usize {
        let mut runs = 0usize;
        let mut carry = 0u64; // top bit of the previous word
        for &w in self.bits.iter() {
            // A run starts at every set bit whose predecessor bit is clear.
            runs += (w & !((w << 1) | carry)).count_ones() as usize;
            carry = w >> 63;
        }
        runs
    }

    /// Encoded size on the wire: the smallest of the three representations
    /// (tag byte included). This is the *actual* per-message piggyback
    /// cost that E6 and `exp_scale` report.
    pub fn wire_bytes(&self) -> usize {
        let w = id_width(self.n);
        let dense = Self::dense_wire_bytes(self.n as usize);
        let sparse = 1 + 4 + self.len() * w;
        let runs = 1 + 4 + self.run_count() * 2 * w;
        dense.min(sparse).min(runs)
    }

    /// Size of the dense-bitmap representation (tag included): the static
    /// `1 + ⌈N/8⌉` formula — the upper bound every adaptive encoding is
    /// measured against.
    pub fn dense_wire_bytes(n: usize) -> usize {
        1 + n.div_ceil(8)
    }

    /// Serialize into the smallest representation; ties pick the lowest
    /// tag, so the choice is deterministic.
    pub fn to_bytes(&self) -> Vec<u8> {
        let w = id_width(self.n);
        let dense = Self::dense_wire_bytes(self.n as usize);
        let sparse = 1 + 4 + self.len() * w;
        let runs = 1 + 4 + self.run_count() * 2 * w;
        if dense <= sparse && dense <= runs {
            self.encode_dense()
        } else if sparse <= runs {
            self.encode_sparse()
        } else {
            self.encode_runs()
        }
    }

    /// Force the dense-bitmap representation (differential tests, benches).
    pub fn encode_dense(&self) -> Vec<u8> {
        let body = (self.n as usize).div_ceil(8);
        let mut out = vec![0u8; 1 + body];
        out[0] = TENTSET_TAG_DENSE;
        for (i, byte) in out[1..].iter_mut().enumerate() {
            let word = self.bits[i / 8];
            *byte = ((word >> ((i % 8) * 8)) & 0xFF) as u8;
        }
        out
    }

    /// Force the sparse id-list representation (differential tests,
    /// benches).
    pub fn encode_sparse(&self) -> Vec<u8> {
        let w = id_width(self.n);
        let mut out = Vec::with_capacity(1 + 4 + self.len() * w);
        out.push(TENTSET_TAG_SPARSE);
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        for p in self.iter() {
            out.extend_from_slice(&p.0.to_le_bytes()[..w]);
        }
        out
    }

    /// Force the interval-run representation (differential tests, benches).
    /// Each run is `(start, len - 1)` so a 65 536-wide run still fits the
    /// two-byte field.
    pub fn encode_runs(&self) -> Vec<u8> {
        let w = id_width(self.n);
        let mut out = Vec::with_capacity(1 + 4 + self.run_count() * 2 * w);
        out.push(TENTSET_TAG_RUNS);
        out.extend_from_slice(&(self.run_count() as u32).to_le_bytes());
        let mut run: Option<(u32, u32)> = None; // (start, end) inclusive
        for p in self.iter() {
            match run {
                Some((start, end)) if p.0 == end + 1 => {
                    run = Some((start, p.0));
                }
                Some((start, end)) => {
                    out.extend_from_slice(&start.to_le_bytes()[..w]);
                    out.extend_from_slice(&(end - start).to_le_bytes()[..w]);
                    run = Some((p.0, p.0));
                }
                None => run = Some((p.0, p.0)),
            }
        }
        if let Some((start, end)) = run {
            out.extend_from_slice(&start.to_le_bytes()[..w]);
            out.extend_from_slice(&(end - start).to_le_bytes()[..w]);
        }
        out
    }

    /// Deserialize from `to_bytes` output. The whole buffer must be
    /// consumed exactly.
    pub fn from_bytes(n: usize, data: &[u8]) -> Option<Self> {
        match Self::from_wire(n, data) {
            Some((s, used)) if used == data.len() => Some(s),
            _ => None,
        }
    }

    /// Decode one self-describing tentSet from the front of `buf`,
    /// returning the set and the number of bytes consumed. Rejects unknown
    /// tags, truncation, out-of-range ids, non-canonical orderings and
    /// stray bits beyond the universe.
    pub fn from_wire(n: usize, buf: &[u8]) -> Option<(Self, usize)> {
        if n < 1 || n > u32::MAX as usize {
            return None;
        }
        let nu = n as u32;
        let w = id_width(nu);
        let tag = *buf.first()?;
        let mut bits = vec![0u64; n.div_ceil(64)];
        match tag {
            TENTSET_TAG_DENSE => {
                let body_len = n.div_ceil(8);
                let body = buf.get(1..1 + body_len)?;
                for (i, &byte) in body.iter().enumerate() {
                    bits[i / 8] |= (byte as u64) << ((i % 8) * 8);
                }
                // Reject set bits beyond the universe.
                if n % 64 != 0 {
                    let last = bits.len() - 1;
                    if bits[last] & !(!0u64 >> (64 - n % 64)) != 0 {
                        return None;
                    }
                }
                Some((TentSet { n: nu, bits: bits.into() }, 1 + body_len))
            }
            TENTSET_TAG_SPARSE => {
                let count = u32::from_le_bytes(buf.get(1..5)?.try_into().ok()?) as usize;
                if count > n {
                    return None;
                }
                let body = buf.get(5..5 + count * w)?;
                let mut prev: Option<u32> = None;
                for chunk in body.chunks_exact(w) {
                    let id = read_le_id(chunk);
                    if id >= nu || prev.is_some_and(|p| id <= p) {
                        return None; // out of range / not strictly ascending
                    }
                    prev = Some(id);
                    bits[id as usize / 64] |= 1u64 << (id % 64);
                }
                Some((TentSet { n: nu, bits: bits.into() }, 5 + count * w))
            }
            TENTSET_TAG_RUNS => {
                let count = u32::from_le_bytes(buf.get(1..5)?.try_into().ok()?) as usize;
                if count > n.div_ceil(2) {
                    return None; // more runs than any canonical set can have
                }
                let body = buf.get(5..5 + count * 2 * w)?;
                let mut next_free: u64 = 0; // smallest id the next run may start at
                for chunk in body.chunks_exact(2 * w) {
                    let start = read_le_id(&chunk[..w]) as u64;
                    let end = start + read_le_id(&chunk[w..]) as u64; // len - 1 on the wire
                                                                      // Runs must be sorted, non-overlapping and non-adjacent
                                                                      // (adjacent runs are one run in canonical form).
                    if start < next_free || end >= nu as u64 {
                        return None;
                    }
                    next_free = end + 2;
                    set_bit_range(&mut bits, start as u32, end as u32);
                }
                Some((TentSet { n: nu, bits: bits.into() }, 5 + count * 2 * w))
            }
            _ => None,
        }
    }
}

/// Read one little-endian id of 2 or 4 bytes.
fn read_le_id(chunk: &[u8]) -> u32 {
    let mut raw = [0u8; 4];
    raw[..chunk.len()].copy_from_slice(chunk);
    u32::from_le_bytes(raw)
}

/// Set bits `lo..=hi` in a word array.
fn set_bit_range(bits: &mut [u64], lo: u32, hi: u32) {
    let (lw, hw) = (lo as usize / 64, hi as usize / 64);
    let lo_mask = !0u64 << (lo % 64);
    let hi_mask = !0u64 >> (63 - hi % 64);
    if lw == hw {
        bits[lw] |= lo_mask & hi_mask;
    } else {
        bits[lw] |= lo_mask;
        for word in &mut bits[lw + 1..hw] {
            *word = !0u64;
        }
        bits[hw] |= hi_mask;
    }
}

/// Word-at-a-time member iterator over a [`TentSet`].
pub struct TentSetIter<'a> {
    bits: &'a [u64],
    word: usize,
    cur: u64,
}

impl Iterator for TentSetIter<'_> {
    type Item = ProcessId;

    fn next(&mut self) -> Option<ProcessId> {
        while self.cur == 0 {
            self.word += 1;
            if self.word >= self.bits.len() {
                return None;
            }
            self.cur = self.bits[self.word];
        }
        let bit = self.cur.trailing_zeros();
        self.cur &= self.cur - 1;
        Some(ProcessId(self.word as u32 * 64 + bit))
    }
}

impl fmt::Debug for TentSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, p) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    #[test]
    fn empty_and_singleton() {
        let e = TentSet::empty(5);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let s = TentSet::singleton(5, p(3));
        assert!(s.contains(p(3)));
        assert!(!s.contains(p(2)));
        assert_eq!(s.len(), 1);
        assert!(!s.is_full());
    }

    #[test]
    fn checked_constructor_bounds() {
        assert!(TentSet::try_new(0).is_none());
        assert!(TentSet::try_new(1).is_some());
        assert!(TentSet::try_new(70_000).is_some());
    }

    #[test]
    fn capacity_beyond_u16() {
        // Regression: the universe used to be a u16, silently truncating
        // at 65 536 processes. N = 70 000 must work end to end.
        let n = 70_000;
        let mut s = TentSet::empty(n);
        assert_eq!(s.universe(), n);
        for i in [0u32, 65_535, 65_536, 69_999] {
            s.insert(p(i));
        }
        assert_eq!(s.len(), 4);
        assert!(s.contains(p(69_999)));
        assert_eq!(s.min(), Some(p(0)));
        assert_eq!(s.first_absent_above(p(65_534)), Some(p(65_537)));
        let d = TentSet::from_bytes(n, &s.to_bytes()).expect("wide universe round-trip");
        assert_eq!(d, s);
    }

    #[test]
    fn merge_is_union() {
        let mut a = TentSet::singleton(4, p(0));
        let b = TentSet::singleton(4, p(2));
        a.merge(&b);
        assert!(a.contains(p(0)) && a.contains(p(2)));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn full_detection() {
        let mut s = TentSet::empty(3);
        for i in 0..3 {
            assert!(!s.is_full());
            s.insert(p(i));
        }
        assert!(s.is_full());
    }

    #[test]
    fn min_and_first_absent() {
        let mut s = TentSet::empty(6);
        s.insert(p(1));
        s.insert(p(2));
        s.insert(p(4));
        assert_eq!(s.min(), Some(p(1)));
        assert_eq!(s.first_absent_above(p(1)), Some(p(3)));
        assert_eq!(s.first_absent_above(p(3)), Some(p(5)));
        assert_eq!(s.first_absent_above(p(5)), None);
        // All above present → None.
        s.insert(p(3));
        s.insert(p(5));
        assert_eq!(s.first_absent_above(p(0)), None);
    }

    #[test]
    fn ranged_scans() {
        let mut s = TentSet::empty(200);
        s.insert(p(64));
        s.insert(p(65));
        s.insert(p(130));
        assert_eq!(s.min_in(0, 200), Some(p(64)));
        assert_eq!(s.min_in(65, 200), Some(p(65)));
        assert_eq!(s.min_in(66, 130), None);
        assert_eq!(s.min_in(66, 131), Some(p(130)));
        assert_eq!(s.first_absent_in(64, 200), Some(p(66)));
        assert_eq!(s.first_absent_in(64, 66), None);
        assert_eq!(s.first_absent_in(199, 200), Some(p(199)));
        assert_eq!(s.first_absent_in(200, 300), None);
    }

    #[test]
    fn adaptive_picks_smallest_repr() {
        // Nearly empty big universe → sparse.
        let s = TentSet::singleton(100_000, p(12_345));
        assert_eq!(s.to_bytes()[0], TENTSET_TAG_SPARSE);
        assert_eq!(s.wire_bytes(), 1 + 4 + 4); // one 4-byte id
                                               // A contiguous wave → runs.
        let mut wave = TentSet::empty(100_000);
        for i in 0..5_000 {
            wave.insert(p(i));
        }
        assert_eq!(wave.to_bytes()[0], TENTSET_TAG_RUNS);
        assert_eq!(wave.wire_bytes(), 1 + 4 + 8); // one (start, len-1) run
                                                  // A scattered half-full small universe → dense.
        let mut alt = TentSet::empty(64);
        for i in (0..64).step_by(2) {
            alt.insert(p(i));
        }
        assert_eq!(alt.to_bytes()[0], TENTSET_TAG_DENSE);
        assert_eq!(alt.wire_bytes(), 1 + 8);
        // Every pick matches the advertised size and round-trips.
        for s in [&s, &wave, &alt] {
            let bytes = s.to_bytes();
            assert_eq!(bytes.len(), s.wire_bytes());
            assert_eq!(TentSet::from_bytes(s.universe(), &bytes).expect("round-trip"), *s);
        }
    }

    #[test]
    fn sparse_era_beats_dense_formula() {
        // The acceptance bar: at N = 1e5 a sparse-era piggyback must be at
        // least 8× smaller than the static ⌈N/8⌉ bitmap.
        let n = 100_000;
        let mut s = TentSet::empty(n);
        for i in 0..100 {
            s.insert(p(i * 997)); // scattered: runs don't help
        }
        assert!(s.wire_bytes() * 8 <= TentSet::dense_wire_bytes(n));
    }

    #[test]
    fn wire_size_adapts_with_occupancy() {
        // Empty sets cost the sparse header regardless of N…
        assert_eq!(TentSet::empty(100_000).wire_bytes(), 1 + 4);
        // …tiny universes stay on the dense bitmap…
        assert_eq!(TentSet::empty(4).wire_bytes(), 1 + 1);
        assert_eq!(TentSet::empty(8).wire_bytes(), 1 + 1);
        // …and a full universe collapses to a single run.
        let mut full = TentSet::empty(1000);
        for i in 0..1000 {
            full.insert(p(i));
        }
        assert_eq!(full.wire_bytes(), 1 + 4 + 4);
        // The static formula still reports the dense cost.
        assert_eq!(TentSet::dense_wire_bytes(1000), 1 + 125);
    }

    #[test]
    fn byte_round_trip() {
        let mut s = TentSet::empty(77);
        for i in [0u32, 5, 63, 64, 76] {
            s.insert(p(i));
        }
        let bytes = s.to_bytes();
        assert_eq!(bytes.len(), s.wire_bytes());
        let d = TentSet::from_bytes(77, &bytes).expect("tentSet round-trip must decode");
        assert_eq!(d, s);
    }

    #[test]
    fn every_forced_repr_round_trips() {
        let mut s = TentSet::empty(300);
        for i in [0u32, 1, 2, 3, 70, 128, 129, 299] {
            s.insert(p(i));
        }
        for enc in [s.encode_dense(), s.encode_sparse(), s.encode_runs()] {
            let d = TentSet::from_bytes(300, &enc).expect("forced repr must decode");
            assert_eq!(d, s);
        }
    }

    #[test]
    fn from_bytes_rejects_bad_input() {
        // Unknown tag.
        assert!(TentSet::from_bytes(9, &[9, 0, 0]).is_none());
        // Dense: wrong length and out-of-range bit.
        assert!(TentSet::from_bytes(9, &[TENTSET_TAG_DENSE, 0xFF]).is_none());
        assert!(TentSet::from_bytes(7, &[TENTSET_TAG_DENSE, 0x80]).is_none());
        // Sparse: id out of range, unsorted, duplicate, count beyond n.
        assert!(TentSet::from_bytes(4, &[TENTSET_TAG_SPARSE, 1, 0, 0, 0, 9, 0]).is_none());
        assert!(TentSet::from_bytes(9, &[TENTSET_TAG_SPARSE, 2, 0, 0, 0, 3, 0, 1, 0]).is_none());
        assert!(TentSet::from_bytes(9, &[TENTSET_TAG_SPARSE, 2, 0, 0, 0, 3, 0, 3, 0]).is_none());
        assert!(TentSet::from_bytes(2, &[TENTSET_TAG_SPARSE, 9, 0, 0, 0]).is_none());
        // Runs: overlap, adjacency (non-canonical), end past the universe.
        let overlap = [TENTSET_TAG_RUNS, 2, 0, 0, 0, 0, 0, 3, 0, 2, 0, 1, 0];
        assert!(TentSet::from_bytes(64, &overlap).is_none());
        let adjacent = [TENTSET_TAG_RUNS, 2, 0, 0, 0, 0, 0, 1, 0, 2, 0, 1, 0];
        assert!(TentSet::from_bytes(64, &adjacent).is_none());
        let past_end = [TENTSET_TAG_RUNS, 1, 0, 0, 0, 6, 0, 1, 0];
        assert!(TentSet::from_bytes(7, &past_end).is_none());
        // Trailing garbage after a valid body is rejected by from_bytes.
        let mut enc = TentSet::singleton(64, p(1)).to_bytes();
        enc.push(0);
        assert!(TentSet::from_bytes(64, &enc).is_none());
    }

    #[test]
    fn from_wire_reports_consumed_length() {
        let mut s = TentSet::empty(1000);
        for i in 500..600 {
            s.insert(p(i));
        }
        let mut enc = s.to_bytes();
        let want = enc.len();
        enc.extend_from_slice(&[0xAB; 7]); // unrelated trailing bytes
        let (d, used) = TentSet::from_wire(1000, &enc).expect("prefix decode");
        assert_eq!(used, want);
        assert_eq!(d, s);
    }

    #[test]
    fn iter_ascending() {
        let mut s = TentSet::empty(100);
        s.insert(p(70));
        s.insert(p(3));
        s.insert(p(64));
        let v: Vec<u32> = s.iter().map(|q| q.0).collect();
        assert_eq!(v, vec![3, 64, 70]);
    }

    #[test]
    fn large_universe() {
        let mut s = TentSet::empty(1000);
        for i in 0..1000 {
            s.insert(p(i));
        }
        assert!(s.is_full());
        let d = TentSet::from_bytes(1000, &s.to_bytes()).expect("full set round-trip");
        assert!(d.is_full());
    }

    #[test]
    #[should_panic]
    fn universe_mismatch_panics() {
        let mut a = TentSet::empty(3);
        let b = TentSet::empty(4);
        a.merge(&b);
    }

    #[test]
    fn clone_shares_storage_until_mutated() {
        let a = TentSet::singleton(64, p(7));
        let b = a.clone();
        assert!(TentSet::shares_storage(&a, &b), "clone must be a refcount bump");
        let before = TentSet::deep_copies();
        let mut c = a.clone();
        c.insert(p(8)); // First mutation of a shared set: one copy.
        assert_eq!(TentSet::deep_copies(), before + 1);
        assert!(!TentSet::shares_storage(&a, &c));
        assert!(a.contains(p(7)) && !a.contains(p(8)), "original untouched");
        assert!(c.contains(p(7)) && c.contains(p(8)));
        // b was never mutated: still sharing.
        assert!(TentSet::shares_storage(&a, &b));
    }

    #[test]
    fn redundant_mutations_never_copy() {
        let a = TentSet::singleton(64, p(3));
        let mut b = a.clone();
        let before = TentSet::deep_copies();
        b.insert(p(3)); // Already present.
        b.merge(&a); // Same storage.
        let sub = TentSet::singleton(64, p(3));
        b.merge(&sub); // Different storage, but adds nothing.
        assert_eq!(TentSet::deep_copies(), before, "no-op mutations must not copy");
        assert!(TentSet::shares_storage(&a, &b));
    }

    #[test]
    fn encoding_never_deep_copies() {
        let a = TentSet::singleton(512, p(100));
        let b = a.clone();
        let before = TentSet::deep_copies();
        let _ = a.wire_bytes();
        let _ = a.to_bytes();
        let _ = a.encode_sparse();
        let _ = a.encode_runs();
        assert_eq!(TentSet::deep_copies(), before, "encoding is read-only");
        assert!(TentSet::shares_storage(&a, &b));
    }

    #[test]
    fn equality_and_hash_are_by_content() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let a = TentSet::singleton(40, p(5));
        let mut b = TentSet::empty(40);
        b.insert(p(5));
        assert!(!TentSet::shares_storage(&a, &b));
        assert_eq!(a, b);
        let hash = |s: &TentSet| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
    }
}
