//! The OCPT state machine — basic algorithm (paper §3.4, Fig. 3).
//!
//! One [`OcptProcess`] per process. Handlers mirror the paper:
//!
//! * [`OcptProcess::initiate_checkpoint`] — §3.4.1, any `Normal` process
//!   may take a tentative checkpoint and thereby initiate consistent
//!   global checkpoint collection;
//! * [`OcptProcess::on_app_send`] — §3.4.2, piggyback `(csn, stat,
//!   tentSet)` and log the sent message while `Tentative`;
//! * [`OcptProcess::on_app_receive`] — §3.4.3, the full case analysis,
//!   with the provably-impossible sub-cases surfaced as
//!   [`ProtocolError`]s;
//! * finalization — §3.4.4, triggered when `tentSet = allPSet` or when a
//!   message reveals a peer already finalized.
//!
//! The control-message extension (Fig. 4) lives in [`crate::control`] as a
//! second `impl` block on the same type.
//!
//! The type is sans-io: handlers mutate local state and append
//! [`Action`]s; they never block, never read clocks, never touch sockets.

use ocpt_causality::VClock;
use ocpt_metrics::Counters;
use ocpt_sim::{MsgId, ProcessId};

use crate::actions::{Action, Outbox};
use crate::config::OcptConfig;
use crate::error::ProtocolError;
use crate::log::{Direction, LogEntry, MessageLog};
use crate::piggyback::Piggyback;
use crate::strategy::{LogDecision, LogWindow};
use crate::types::{Csn, Status, TentSet};
use crate::wire::AppPayload;

/// The per-process OCPT protocol state machine.
// [OCPT §3.3] csn_i, stat_i, tentSet_i, logSet_i — the paper's per-process
// data structures, held verbatim by this struct.
#[derive(Clone, Debug)]
pub struct OcptProcess {
    id: ProcessId,
    n: usize,
    cfg: OcptConfig,
    /// `csn_i` — sequence number of the current checkpoint.
    csn: Csn,
    /// `stat_i`.
    status: Status,
    /// `tentSet_i`.
    tent_set: TentSet,
    /// `logSet_i` — messages logged since the current tentative checkpoint
    /// (since the last finalization under continuous-window strategies).
    log: MessageLog,
    /// Local vector clock, maintained and piggybacked only when the
    /// configured logging strategy asks for it (causal-compressed).
    clock: Option<VClock>,
    /// Whether the convergence timer is armed (mirrors the driver's timer).
    pub(crate) timer_armed: bool,
    /// `CK_REQ(csn)` already forwarded for this csn (Fig. 4 dedupe guard).
    pub(crate) ck_req_sent_for: Option<Csn>,
    /// `CK_END(csn)` already broadcast for this csn (Fig. 4 dedupe guard).
    pub(crate) ck_end_sent_for: Option<Csn>,
    /// Hierarchical only: `CK_BGN(csn)` already escalated to `P_0` by this
    /// group leader.
    pub(crate) ck_bgn_sent_for: Option<Csn>,
    /// Hierarchical only: `CK_GRP_DONE(csn)` already reported to `P_0` by
    /// this group leader.
    pub(crate) grp_done_sent_for: Option<Csn>,
    /// Hierarchical only, `P_0` only: which groups reported their ring
    /// complete for the csn in `.0` (`.2` counts set entries).
    pub(crate) groups_done: Option<(Csn, Vec<bool>, u32)>,
    /// Resolved control sharding: `Some(group_size)` when this system runs
    /// hierarchical waves, `None` for the paper's flat ring.
    hier_group_size: Option<u32>,
    stats: Counters,
}

impl OcptProcess {
    /// A process `id` in a system of `n`, in `Normal` status with the
    /// initial checkpoint (sequence number 0) conceptually taken.
    pub fn new(id: ProcessId, n: usize, cfg: OcptConfig) -> Self {
        assert!(n >= 2, "need at least two processes");
        assert!(id.index() < n, "pid out of range");
        cfg.validate().expect("invalid OcptConfig");
        OcptProcess {
            id,
            n,
            cfg,
            csn: 0,
            status: Status::Normal,
            tent_set: TentSet::empty(n),
            log: MessageLog::new(),
            clock: cfg.logging.strategy().uses_clock().then(|| VClock::zero(n)),
            timer_armed: false,
            ck_req_sent_for: None,
            ck_end_sent_for: None,
            ck_bgn_sent_for: None,
            grp_done_sent_for: None,
            groups_done: None,
            hier_group_size: cfg.control_topology.group_size(n),
            stats: Counters::new(),
        }
    }

    /// A process restored from the consistent global checkpoint `S_line`
    /// during rollback recovery: `Normal` status, sequence number `line`,
    /// empty log — exactly the protocol state a process has right after
    /// its finalization event `CFE_{i,line}`, which is where the restored
    /// application state sits.
    pub fn restored(id: ProcessId, n: usize, cfg: OcptConfig, line: Csn) -> Self {
        let mut p = Self::new(id, n, cfg);
        p.csn = line;
        p.stats.inc("recovery.restored");
        p
    }

    // ---- accessors ----

    /// This process's id.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// Number of processes in the system.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current checkpoint sequence number `csn_i`.
    pub fn csn(&self) -> Csn {
        self.csn
    }

    /// Current status `stat_i`.
    pub fn status(&self) -> Status {
        self.status
    }

    /// Current tentative process set `tentSet_i`.
    pub fn tent_set(&self) -> &TentSet {
        &self.tent_set
    }

    /// The live (unfinalized) message log.
    pub fn log(&self) -> &MessageLog {
        &self.log
    }

    /// The local vector clock (`Some` only under causal-compressed
    /// logging).
    pub fn clock(&self) -> Option<&VClock> {
        self.clock.as_ref()
    }

    /// Protocol event counters.
    pub fn stats(&self) -> &Counters {
        &self.stats
    }

    pub(crate) fn stats_mut(&mut self) -> &mut Counters {
        &mut self.stats
    }

    /// The configuration in force.
    pub fn config(&self) -> &OcptConfig {
        &self.cfg
    }

    // ---- hierarchical group geometry (control sharding) ----

    /// `Some(group_size)` when this system runs hierarchical control
    /// waves; `None` for the paper's flat ring.
    pub fn hier_group_size(&self) -> Option<u32> {
        self.hier_group_size
    }

    /// Number of groups under the resolved sharding (1 when flat).
    pub fn num_groups(&self) -> u32 {
        match self.hier_group_size {
            Some(s) => (self.n as u32).div_ceil(s),
            None => 1,
        }
    }

    /// The group a process belongs to (groups are contiguous id ranges).
    pub(crate) fn group_of(&self, pid: ProcessId) -> u32 {
        pid.0 / self.hier_group_size.expect("group_of requires hierarchical mode")
    }

    /// The leader (smallest id) of a group.
    pub(crate) fn leader_of(&self, group: u32) -> ProcessId {
        ProcessId(group * self.hier_group_size.expect("leader_of requires hierarchical mode"))
    }

    /// One-past-the-end id of a group.
    pub(crate) fn group_end(&self, group: u32) -> u32 {
        let s = self.hier_group_size.expect("group_end requires hierarchical mode");
        ((group + 1) * s).min(self.n as u32)
    }

    /// Whether this process leads its group (`P_0` leads group 0 *and*
    /// coordinates the leaders).
    pub(crate) fn is_group_leader(&self) -> bool {
        match self.hier_group_size {
            Some(s) => self.id.0 % s == 0,
            None => false,
        }
    }

    // ---- [OCPT §3.4.1] initiation ----

    /// Attempt a scheduled basic checkpoint. Returns `true` if a tentative
    /// checkpoint was taken; a `Tentative` process skips (it "is allowed to
    /// take another tentative checkpoint only after finalizing the already
    /// taken tentative checkpoint").
    pub fn initiate_checkpoint(&mut self, out: &mut Outbox) -> bool {
        if self.status == Status::Tentative {
            self.stats.inc("ckpt.initiation_skipped");
            return false;
        }
        self.take_tentative(out, true);
        true
    }

    /// `takeTentativeCheckpoint(i)` from Fig. 3. `arm_timer` is false when
    /// the caller immediately knows the ring is already running (Fig. 4's
    /// cancellation rule would cancel it in the same breath).
    pub(crate) fn take_tentative(&mut self, out: &mut Outbox, arm_timer: bool) {
        debug_assert_eq!(self.status, Status::Normal, "cannot take tentative while tentative");
        self.csn += 1;
        self.status = Status::Tentative;
        self.tent_set = TentSet::singleton(self.n, self.id);
        match self.cfg.logging.strategy().window() {
            // The paper: logSet_i := ∅ at every tentative checkpoint.
            LogWindow::TentativeOnly => self.log = MessageLog::new(),
            // Continuous strategies keep the Normal-era entries (their
            // effects are inside CT) and mark where the replay window —
            // the part replayed on top of CT — begins.
            LogWindow::Continuous => self.log.mark_replay_start(),
        }
        self.stats.inc("ckpt.tentative");
        out.push(Action::TakeTentative { csn: self.csn });
        if arm_timer && self.cfg.control_messages {
            self.timer_armed = true;
            self.stats.inc("timer.set");
            out.push(Action::SetTimer { csn: self.csn });
        }
    }

    // ---- [OCPT §3.4.2] sending: piggyback (csn, stat, tentSet); log the
    // sent message as the configured strategy directs (the paper: full
    // payload while Tentative) ----

    /// Called for every outgoing application message. Returns the
    /// piggyback to attach; logs the sent message as the configured
    /// [`crate::strategy::LoggingStrategy`] directs.
    pub fn on_app_send(&mut self, dst: ProcessId, msg_id: MsgId, payload: AppPayload) -> Piggyback {
        self.log_event(Direction::Sent, dst, msg_id, payload);
        self.stats.inc("app.sent");
        let clock = self.clock.as_mut().map(|c| {
            c.tick(self.id);
            c.clone()
        });
        Piggyback { csn: self.csn, stat: self.status, tent_set: self.tent_set.clone(), clock }
    }

    // ---- [OCPT §3.4.3] receiving: process the message first, then the
    // case analysis (1)–(4) ----

    /// Called for every incoming application message, *after* the driver
    /// has processed it application-wise ("it processes the message first
    /// and then takes the following actions").
    pub fn on_app_receive(
        &mut self,
        src: ProcessId,
        msg_id: MsgId,
        payload: AppPayload,
        pb: &Piggyback,
        out: &mut Outbox,
    ) -> Result<(), ProtocolError> {
        self.stats.inc("app.received");
        // Causal-compressed only: snapshot the clock *before* this receive
        // touches it. If M triggers a finalization that excludes M (cases
        // 3b/2c), the cut steps one event back — the sealed cut clock must
        // not contain M's receive, mirroring the observer oracle's
        // excluded-trigger convention.
        let pre_clock = self.clock.clone();
        if let Some(c) = &mut self.clock {
            if let Some(sent) = &pb.clock {
                c.merge(sent);
            }
            c.tick(self.id);
        }
        // Fig. 3 logs every message received while tentative (and the
        // continuous strategies log in Normal status too); the trigger is
        // subtracted below where the paper requires `logSet_i - {M}`.
        self.log_event(Direction::Received, src, msg_id, payload);
        match (self.status, pb.stat) {
            // Case (1): both normal — nobody knows of a new initiation.
            (Status::Normal, Status::Normal) => {
                if pb.csn > self.csn {
                    // The sender finalized a csn we never took: impossible
                    // (analogue of sub-case (3c) for a normal receiver).
                    return Err(ProtocolError::FinalizedAhead {
                        at: self.id,
                        ours: self.csn,
                        theirs: pb.csn,
                    });
                }
                Ok(())
            }

            // Case (4): sender tentative, we are normal.
            (Status::Normal, Status::Tentative) => {
                if pb.csn <= self.csn {
                    // (4a): we already finalized that one.
                    Ok(())
                } else if pb.csn == self.csn + 1 {
                    // (4b): first news of a new initiation — take a
                    // tentative checkpoint and adopt the sender's knowledge.
                    self.take_tentative(out, true);
                    self.tent_set.merge(&pb.tent_set);
                    // If that already completes allPSet (small systems),
                    // finalize immediately — §3.4.4's condition holds.
                    self.maybe_finalize_full(out);
                    Ok(())
                } else {
                    // (4c) = (2d): impossible.
                    Err(ProtocolError::AppCsnJump {
                        at: self.id,
                        ours: self.csn,
                        theirs: pb.csn,
                        subcase: "4c",
                    })
                }
            }

            // Case (3): sender normal (has finalized), we are tentative.
            (Status::Tentative, Status::Normal) => {
                if pb.csn < self.csn {
                    // (3a): stale — stays in the log, no other action.
                    Ok(())
                } else if pb.csn == self.csn {
                    // (3b): the sender finalized C_{j,csn}, so every
                    // process has taken a tentative checkpoint with our
                    // csn. Finalize, excluding M (`logSet_i - {M}`); the
                    // sealed cut clock predates M for the same reason.
                    let trigger = self.log.take(msg_id);
                    self.finalize_at_cut(Some(msg_id), pre_clock, out);
                    self.relog_trigger(trigger);
                    Ok(())
                } else {
                    // (3c): impossible.
                    self.log.exclude(msg_id);
                    Err(ProtocolError::FinalizedAhead {
                        at: self.id,
                        ours: self.csn,
                        theirs: pb.csn,
                    })
                }
            }

            // Case (2): both tentative.
            (Status::Tentative, Status::Tentative) => {
                if pb.csn < self.csn {
                    // (2a): we already finalized checkpoint pb.csn.
                    Ok(())
                } else if pb.csn == self.csn {
                    // (2b): same global checkpoint — pool knowledge.
                    self.tent_set.merge(&pb.tent_set);
                    self.maybe_finalize_full(out);
                    Ok(())
                } else if pb.csn == self.csn + 1 {
                    // (2c): sender finalized csn_i and already started the
                    // next one. Finalize ours (excluding M; cut clock
                    // predates M), then join the new initiation — M's
                    // receive precedes the new CT, so a carried-over
                    // trigger lands before the new replay window.
                    let trigger = self.log.take(msg_id);
                    self.finalize_at_cut(Some(msg_id), pre_clock, out);
                    self.relog_trigger(trigger);
                    self.take_tentative(out, true);
                    self.tent_set.merge(&pb.tent_set);
                    self.maybe_finalize_full(out);
                    Ok(())
                } else {
                    // (2d): impossible.
                    self.log.exclude(msg_id);
                    Err(ProtocolError::AppCsnJump {
                        at: self.id,
                        ours: self.csn,
                        theirs: pb.csn,
                        subcase: "2d",
                    })
                }
            }
        }
    }

    /// Consult the configured strategy for one message event and log what
    /// it asks for. The paper's policy: full payload, both directions,
    /// only while `Tentative`.
    fn log_event(&mut self, dir: Direction, peer: ProcessId, msg_id: MsgId, payload: AppPayload) {
        let counter = match (self.cfg.logging.strategy().decide(dir, self.status), dir) {
            (LogDecision::Skip, Direction::Sent) => return,
            (LogDecision::Skip, Direction::Received) => return,
            (LogDecision::Payload, Direction::Sent) => {
                self.log.push(LogEntry::payload(dir, peer, msg_id, payload));
                "log.sent"
            }
            (LogDecision::Payload, Direction::Received) => {
                self.log.push(LogEntry::payload(dir, peer, msg_id, payload));
                "log.received"
            }
            (LogDecision::Determinant, Direction::Sent) => {
                self.log.push(LogEntry::determinant(dir, peer, msg_id, payload));
                "log.sent_det"
            }
            (LogDecision::Determinant, Direction::Received) => {
                self.log.push(LogEntry::determinant(dir, peer, msg_id, payload));
                "log.received_det"
            }
        };
        self.stats.inc(counter);
    }

    /// Re-log a finalization trigger that `take` removed: under a
    /// continuous-window strategy the excluded message still belongs in
    /// the *next* epoch's log (its receive is on the far side of the cut).
    fn relog_trigger(&mut self, trigger: Option<LogEntry>) {
        if self.cfg.logging.strategy().window() == LogWindow::Continuous {
            if let Some(e) = trigger {
                self.log.push(e);
            }
        }
    }

    /// §3.4.4: finalize if `tentSet_i = allPSet`.
    // [OCPT §3.4.4] finalization predicate: tentSet_i = allPSet, or word
    // from an already-finalized / already-advanced sender.
    pub(crate) fn maybe_finalize_full(&mut self, out: &mut Outbox) {
        if self.status == Status::Tentative && self.tent_set.is_full() {
            self.finalize(out);
        }
    }

    /// Finalize with no excluded trigger (control path / allPSet path).
    pub(crate) fn finalize(&mut self, out: &mut Outbox) {
        self.finalize_excluding(None, out);
    }

    /// Finalize the current tentative checkpoint: freeze and hand over the
    /// log, return to `Normal`, cancel the timer, and (when configured)
    /// have `P_0` broadcast `CK_END` so suppressed processes cannot starve.
    /// `excluded` names the trigger message removed from the log
    /// (`logSet_i - {M}`), if any.
    pub(crate) fn finalize_excluding(&mut self, excluded: Option<MsgId>, out: &mut Outbox) {
        let cut = self.clock.clone();
        self.finalize_at_cut(excluded, cut, out);
    }

    /// [`OcptProcess::finalize_excluding`] with an explicit cut clock:
    /// cases (3b)/(2c) pass the pre-receive clock because the trigger `M`
    /// is excluded from the cut, every other path seals the current one.
    /// The sealed clock gets one extra own-component tick — the checkpoint
    /// is itself a local event, the same convention the observer oracle
    /// uses, so two checkpoints compare as ordered *iff* a message crosses
    /// the cut (Theorem 2). `cut` is `None` unless causal-compressed
    /// logging is configured.
    fn finalize_at_cut(&mut self, excluded: Option<MsgId>, cut: Option<VClock>, out: &mut Outbox) {
        debug_assert_eq!(self.status, Status::Tentative, "finalize requires tentative status");
        self.status = Status::Normal;
        self.stats.inc("ckpt.finalized");
        if let Some(mut c) = cut {
            c.tick(self.id);
            self.log.set_clock(c);
        }
        self.stats.add("log.flushed_msgs", self.log.len() as u64);
        self.stats.add("log.flushed_bytes", self.log.flush_bytes());
        if self.timer_armed {
            self.timer_armed = false;
            out.push(Action::CancelTimer);
        }
        let log = std::mem::take(&mut self.log);
        let csn = self.csn;
        out.push(Action::Finalize { csn, log, excluded });
        // Flat: P_0 broadcasts CK_END to everyone. Hierarchical: P_0
        // notifies the leaders (plus its own group), and every finalizing
        // leader relays to its members — the "leaders exchange CK_END
        // summaries" link that keeps suppressed members from starving.
        if self.cfg.control_messages
            && self.cfg.p0_broadcast_on_finalize
            && (self.id == ProcessId::P0
                || (self.hier_group_size.is_some() && self.is_group_leader()))
        {
            self.broadcast_ck_end(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(id: u64) -> AppPayload {
        AppPayload { id, len: 100 }
    }

    fn proc(i: u32, n: usize) -> OcptProcess {
        // Plain-basic config (no control messages) keeps these unit tests
        // focused on Fig. 3; Fig. 4 is tested in `control`.
        OcptProcess::new(ProcessId(i), n, OcptConfig::basic_only())
    }

    fn pb_of(p: &OcptProcess) -> Piggyback {
        Piggyback::new(p.csn(), p.status(), p.tent_set().clone())
    }

    #[test]
    fn initial_state_matches_paper() {
        let p = proc(1, 4);
        assert_eq!(p.csn(), 0);
        assert_eq!(p.status(), Status::Normal);
        assert!(p.tent_set().is_empty());
        assert!(p.log().is_empty());
    }

    #[test]
    fn initiation_takes_tentative_once() {
        let mut p = proc(0, 4);
        let mut out = Outbox::new();
        assert!(p.initiate_checkpoint(&mut out));
        assert_eq!(p.csn(), 1);
        assert_eq!(p.status(), Status::Tentative);
        assert!(p.tent_set().contains(ProcessId(0)));
        assert_eq!(p.tent_set().len(), 1);
        assert_eq!(out, vec![Action::TakeTentative { csn: 1 }]);
        // While tentative, a second initiation is refused (§3.4).
        out.clear();
        assert!(!p.initiate_checkpoint(&mut out));
        assert!(out.is_empty());
        assert_eq!(p.stats().get("ckpt.initiation_skipped"), 1);
    }

    #[test]
    fn send_logs_only_while_tentative() {
        let mut p = proc(0, 3);
        let pb = p.on_app_send(ProcessId(1), MsgId(1), payload(1));
        assert_eq!(pb.stat, Status::Normal);
        assert!(p.log().is_empty());
        let mut out = Outbox::new();
        p.initiate_checkpoint(&mut out);
        let pb = p.on_app_send(ProcessId(1), MsgId(2), payload(2));
        assert_eq!(pb.stat, Status::Tentative);
        assert_eq!(pb.csn, 1);
        assert!(pb.tent_set.contains(ProcessId(0)));
        assert_eq!(p.log().len(), 1);
        assert_eq!(p.log().entries()[0].dir, Direction::Sent);
    }

    #[test]
    fn send_path_never_deep_clones_tent_set() {
        // The per-send piggyback is a refcount bump of tentSet storage —
        // the grid engine's hot-path guarantee, also pinned by the
        // `piggyback_send` microbench.
        let mut p = proc(0, 256);
        let mut out = Outbox::new();
        p.initiate_checkpoint(&mut out);
        let before = TentSet::deep_copies();
        let mut last = None;
        for id in 1..=1000u64 {
            last = Some(p.on_app_send(ProcessId(1), MsgId(id), payload(id)));
        }
        assert_eq!(TentSet::deep_copies(), before, "send path deep-cloned tentSet");
        let pb = last.expect("a piggybacked send was captured above");
        assert!(
            TentSet::shares_storage(&pb.tent_set, p.tent_set()),
            "piggyback must share the process's tentSet storage"
        );
    }

    #[test]
    fn case1_normal_normal_is_noop() {
        let mut receiver = proc(1, 3);
        let sender = proc(0, 3);
        let mut out = Outbox::new();
        let pb = pb_of(&sender);
        receiver
            .on_app_receive(ProcessId(0), MsgId(1), payload(1), &pb, &mut out)
            .expect("paper §3.4.3 case analysis must accept this delivery");
        assert!(out.is_empty());
        assert_eq!(receiver.status(), Status::Normal);
        assert!(receiver.log().is_empty());
    }

    #[test]
    fn case4b_first_news_takes_tentative_and_merges() {
        let mut sender = proc(0, 3);
        let mut receiver = proc(1, 3);
        let mut out = Outbox::new();
        sender.initiate_checkpoint(&mut out);
        let pb = sender.on_app_send(ProcessId(1), MsgId(1), payload(1));
        out.clear();
        receiver
            .on_app_receive(ProcessId(0), MsgId(1), payload(1), &pb, &mut out)
            .expect("paper §3.4.3 case analysis must accept this delivery");
        assert_eq!(receiver.csn(), 1);
        assert_eq!(receiver.status(), Status::Tentative);
        // tentSet = {P0} ∪ {P1}.
        assert!(receiver.tent_set().contains(ProcessId(0)));
        assert!(receiver.tent_set().contains(ProcessId(1)));
        assert_eq!(receiver.tent_set().len(), 2);
        assert_eq!(out, vec![Action::TakeTentative { csn: 1 }]);
        // M itself is NOT in the new log: it was received before CT_{1,1}.
        assert!(receiver.log().is_empty());
    }

    #[test]
    fn case4b_two_process_system_finalizes_immediately() {
        // With N = 2, receiving the initiator's message completes allPSet.
        let mut sender = proc(0, 2);
        let mut receiver = proc(1, 2);
        let mut out = Outbox::new();
        sender.initiate_checkpoint(&mut out);
        let pb = sender.on_app_send(ProcessId(1), MsgId(1), payload(1));
        out.clear();
        receiver
            .on_app_receive(ProcessId(0), MsgId(1), payload(1), &pb, &mut out)
            .expect("paper §3.4.3 case analysis must accept this delivery");
        assert_eq!(receiver.status(), Status::Normal);
        assert_eq!(
            out,
            vec![
                Action::TakeTentative { csn: 1 },
                Action::Finalize { csn: 1, log: MessageLog::new(), excluded: None }
            ]
        );
    }

    #[test]
    fn case4a_stale_tentative_sender_ignored() {
        // Receiver already at csn 2 (normal); sender still tentative at 1.
        let mut receiver = proc(1, 3);
        receiver.csn = 2;
        let pb = Piggyback::new(1, Status::Tentative, TentSet::singleton(3, ProcessId(0)));
        let mut out = Outbox::new();
        receiver
            .on_app_receive(ProcessId(0), MsgId(9), payload(9), &pb, &mut out)
            .expect("paper §3.4.3 case analysis must accept this delivery");
        assert!(out.is_empty());
        assert_eq!(receiver.status(), Status::Normal);
    }

    #[test]
    fn case2b_merges_and_finalizes_when_full() {
        let n = 3;
        let mut p = proc(2, n);
        let mut out = Outbox::new();
        p.initiate_checkpoint(&mut out);
        out.clear();
        // Peer P1 knows {P0, P1}.
        let mut ts = TentSet::singleton(n, ProcessId(1));
        ts.insert(ProcessId(0));
        let pb = Piggyback::new(1, Status::Tentative, ts);
        p.on_app_receive(ProcessId(1), MsgId(5), payload(5), &pb, &mut out)
            .expect("paper §3.4.3 case analysis must accept this delivery");
        // tentSet now full → finalize, and M (id 5) is INCLUDED in the log.
        assert_eq!(p.status(), Status::Normal);
        let fin = out.iter().find_map(|a| match a {
            Action::Finalize { csn, log, .. } => Some((csn, log)),
            _ => None,
        });
        let (csn, log) = fin.expect("finalize action");
        assert_eq!(*csn, 1);
        assert_eq!(log.len(), 1);
        assert_eq!(log.entries()[0].msg_id, MsgId(5));
    }

    #[test]
    fn case2b_partial_knowledge_keeps_logging() {
        let n = 4;
        let mut p = proc(3, n);
        let mut out = Outbox::new();
        p.initiate_checkpoint(&mut out);
        out.clear();
        let pb = Piggyback::new(1, Status::Tentative, TentSet::singleton(n, ProcessId(1)));
        p.on_app_receive(ProcessId(1), MsgId(5), payload(5), &pb, &mut out)
            .expect("paper §3.4.3 case analysis must accept this delivery");
        assert_eq!(p.status(), Status::Tentative);
        assert!(out.is_empty());
        assert_eq!(p.log().len(), 1);
        assert_eq!(p.tent_set().len(), 2); // {P1, P3}
    }

    #[test]
    fn case3b_finalize_excludes_trigger() {
        let n = 3;
        let mut p = proc(1, n);
        let mut out = Outbox::new();
        p.initiate_checkpoint(&mut out);
        // Log some traffic first.
        p.on_app_send(ProcessId(2), MsgId(7), payload(7));
        out.clear();
        // P0 has finalized csn 1 (status normal, csn 1).
        let pb = Piggyback::new(1, Status::Normal, TentSet::empty(n));
        p.on_app_receive(ProcessId(0), MsgId(8), payload(8), &pb, &mut out)
            .expect("paper §3.4.3 case analysis must accept this delivery");
        assert_eq!(p.status(), Status::Normal);
        let (_, log) = out
            .iter()
            .find_map(|a| match a {
                Action::Finalize { csn, log, .. } => Some((csn, log)),
                _ => None,
            })
            .expect("finalize");
        // M8 excluded, M7 (sent) retained — exactly the paper's Fig. 2
        // treatment of M8/M9.
        assert_eq!(log.len(), 1);
        assert_eq!(log.entries()[0].msg_id, MsgId(7));
    }

    #[test]
    fn case3a_stale_normal_sender_logged_no_action() {
        let n = 3;
        let mut p = proc(1, n);
        let mut out = Outbox::new();
        p.initiate_checkpoint(&mut out); // csn 1
        p.csn = 2; // simulate being at a later checkpoint
        out.clear();
        let pb = Piggyback::new(1, Status::Normal, TentSet::empty(n));
        p.on_app_receive(ProcessId(0), MsgId(9), payload(9), &pb, &mut out)
            .expect("paper §3.4.3 case analysis must accept this delivery");
        assert!(out.is_empty());
        assert_eq!(p.status(), Status::Tentative);
        assert_eq!(p.log().len(), 1); // M stays in the log
    }

    #[test]
    fn case2c_finalize_then_join_new_initiation() {
        let n = 3;
        let mut p = proc(1, n);
        let mut out = Outbox::new();
        p.initiate_checkpoint(&mut out); // csn 1, tentative
        p.on_app_send(ProcessId(0), MsgId(3), payload(3));
        out.clear();
        // Sender P2 is tentative at csn 2 — it finalized 1 already.
        let pb = Piggyback::new(2, Status::Tentative, TentSet::singleton(n, ProcessId(2)));
        p.on_app_receive(ProcessId(2), MsgId(4), payload(4), &pb, &mut out)
            .expect("paper §3.4.3 case analysis must accept this delivery");
        // Finalized csn 1 excluding M4, then took tentative csn 2.
        assert_eq!(p.csn(), 2);
        assert_eq!(p.status(), Status::Tentative);
        let kinds: Vec<&Action> = out.iter().collect();
        match (&kinds[0], &kinds[1]) {
            (
                Action::Finalize { csn: 1, log, excluded: Some(_) },
                Action::TakeTentative { csn: 2 },
            ) => {
                assert_eq!(log.len(), 1);
                assert_eq!(log.entries()[0].msg_id, MsgId(3));
            }
            other => panic!("unexpected actions {other:?}"),
        }
        // New tentSet = {P1} ∪ {P2}.
        assert_eq!(p.tent_set().len(), 2);
        // New log does not contain M4.
        assert!(p.log().is_empty());
    }

    #[test]
    fn case2a_stale_both_tentative_logged_only() {
        let n = 3;
        let mut p = proc(1, n);
        let mut out = Outbox::new();
        p.initiate_checkpoint(&mut out);
        p.csn = 3; // ahead of the sender
        out.clear();
        let pb = Piggyback::new(2, Status::Tentative, TentSet::singleton(n, ProcessId(0)));
        p.on_app_receive(ProcessId(0), MsgId(1), payload(1), &pb, &mut out)
            .expect("paper §3.4.3 case analysis must accept this delivery");
        assert!(out.is_empty());
        assert_eq!(p.log().len(), 1);
        assert_eq!(p.tent_set().len(), 1); // NOT merged for stale csn
    }

    #[test]
    fn impossible_cases_are_errors() {
        let n = 3;
        // (2d): both tentative, jump of 2.
        let mut p = proc(1, n);
        let mut out = Outbox::new();
        p.initiate_checkpoint(&mut out);
        let pb = Piggyback::new(3, Status::Tentative, TentSet::singleton(n, ProcessId(0)));
        let e = p.on_app_receive(ProcessId(0), MsgId(1), payload(1), &pb, &mut out).unwrap_err();
        assert!(matches!(e, ProtocolError::AppCsnJump { subcase: "2d", .. }));

        // (3c): sender normal ahead of tentative us.
        let mut p = proc(1, n);
        let mut out = Outbox::new();
        p.initiate_checkpoint(&mut out);
        let pb = Piggyback::new(2, Status::Normal, TentSet::empty(n));
        let e = p.on_app_receive(ProcessId(0), MsgId(1), payload(1), &pb, &mut out).unwrap_err();
        assert!(matches!(e, ProtocolError::FinalizedAhead { .. }));

        // (4c): we normal, sender tentative two ahead.
        let mut p = proc(1, n);
        let mut out = Outbox::new();
        let pb = Piggyback::new(2, Status::Tentative, TentSet::singleton(n, ProcessId(0)));
        let e = p.on_app_receive(ProcessId(0), MsgId(1), payload(1), &pb, &mut out).unwrap_err();
        assert!(matches!(e, ProtocolError::AppCsnJump { subcase: "4c", .. }));

        // Case (1) analogue: both normal, sender ahead.
        let mut p = proc(1, n);
        let mut out = Outbox::new();
        let pb = Piggyback::new(1, Status::Normal, TentSet::empty(n));
        let e = p.on_app_receive(ProcessId(0), MsgId(1), payload(1), &pb, &mut out).unwrap_err();
        assert!(matches!(e, ProtocolError::FinalizedAhead { .. }));
    }

    #[test]
    fn stats_track_log_flush() {
        let mut p = proc(0, 2);
        let mut out = Outbox::new();
        p.initiate_checkpoint(&mut out);
        p.on_app_send(ProcessId(1), MsgId(1), payload(1));
        // P1 tentative at same csn with full knowledge.
        let mut ts = TentSet::singleton(2, ProcessId(1));
        ts.insert(ProcessId(0));
        let pb = Piggyback::new(1, Status::Tentative, ts);
        p.on_app_receive(ProcessId(1), MsgId(2), payload(2), &pb, &mut out)
            .expect("paper §3.4.3 case analysis must accept this delivery");
        assert_eq!(p.stats().get("ckpt.finalized"), 1);
        assert_eq!(p.stats().get("log.flushed_msgs"), 2); // sent M1 + recv M2
        assert!(p.stats().get("log.flushed_bytes") > 0);
    }

    /// Full four-process replay of paper Figure 2, message for message.
    ///
    /// P0 initiates; M2 spreads it to P1; M4 to P2; M3 to P3; M5 closes
    /// P2's knowledge (finalize, log {M5, M6}); M7 finalizes P1; M8
    /// finalizes P3 (M8 excluded); M9 finalizes P0 (M9 excluded).
    #[test]
    fn fig2_walkthrough() {
        let n = 4;
        let mut p: Vec<OcptProcess> = (0..4).map(|i| proc(i, n)).collect();
        let mut out = Outbox::new();
        let pl = payload(0);

        // M1: P3 -> P2 before any checkpoint: plain case (1).
        let pb = p[3].on_app_send(ProcessId(2), MsgId(1), pl);
        p[2].on_app_receive(ProcessId(3), MsgId(1), pl, &pb, &mut out)
            .expect("paper §3.4.3 case analysis must accept this delivery");
        assert!(out.is_empty());

        // P0 initiates: CT_{0,1}.
        p[0].initiate_checkpoint(&mut out);
        out.clear();

        // M2: P0 -> P1. P1 takes CT_{1,1}.
        let pb = p[0].on_app_send(ProcessId(1), MsgId(2), pl);
        p[1].on_app_receive(ProcessId(0), MsgId(2), pl, &pb, &mut out)
            .expect("paper §3.4.3 case analysis must accept this delivery");
        assert_eq!(p[1].status(), Status::Tentative);
        assert_eq!(p[1].tent_set().len(), 2); // {P0,P1}
        out.clear();

        // M4: P1 -> P2. P2 takes CT_{2,1} and learns {P0,P1,P2}.
        let pb = p[1].on_app_send(ProcessId(2), MsgId(4), pl);
        p[2].on_app_receive(ProcessId(1), MsgId(4), pl, &pb, &mut out)
            .expect("paper §3.4.3 case analysis must accept this delivery");
        assert_eq!(p[2].status(), Status::Tentative);
        assert_eq!(p[2].tent_set().len(), 3);
        out.clear();

        // M3: P1 -> P3. P3 takes CT_{3,1} and learns {P0,P1,P3}.
        let pb = p[1].on_app_send(ProcessId(3), MsgId(3), pl);
        p[3].on_app_receive(ProcessId(1), MsgId(3), pl, &pb, &mut out)
            .expect("paper §3.4.3 case analysis must accept this delivery");
        assert_eq!(p[3].status(), Status::Tentative);
        assert_eq!(p[3].tent_set().len(), 3);
        out.clear();

        // M6: P2 -> P3, sent now but delivered late (channels have
        // arbitrary delays and need not be FIFO, §2.1). P2 logs it as sent.
        let pb6 = p[2].on_app_send(ProcessId(3), MsgId(6), pl);
        assert_eq!(p[2].log().len(), 1);

        // M5: P3 -> P2. P2 learns P3 took it → full set → finalizes with
        // log {M5, M6-sent, M4? no: M4 was received before CT_{2,1}}.
        let pb5 = p[3].on_app_send(ProcessId(2), MsgId(5), pl);
        p[2].on_app_receive(ProcessId(3), MsgId(5), pl, &pb5, &mut out)
            .expect("paper §3.4.3 case analysis must accept this delivery");
        assert_eq!(p[2].status(), Status::Normal);
        let (csn, log) = out
            .iter()
            .find_map(|a| match a {
                Action::Finalize { csn, log, .. } => Some((*csn, log.clone())),
                _ => None,
            })
            .expect("P2 finalizes");
        assert_eq!(csn, 1);
        // C_{2,1} log = {M6 (sent), M5 (received)} — matches the paper's
        // C_{2,1} = CT_{2,1} ∪ {M5, M6}.
        let ids: Vec<u64> = log.entries().iter().map(|e| e.msg_id.0).collect();
        assert_eq!(ids, vec![6, 5]);
        out.clear();

        // M7: P2 (now normal, csn 1) -> P1: case (3b), P1 finalizes
        // excluding M7.
        let pb7 = p[2].on_app_send(ProcessId(1), MsgId(7), pl);
        assert_eq!(pb7.stat, Status::Normal);
        p[1].on_app_receive(ProcessId(2), MsgId(7), pl, &pb7, &mut out)
            .expect("paper §3.4.3 case analysis must accept this delivery");
        assert_eq!(p[1].status(), Status::Normal);
        let (_, log1) = out
            .iter()
            .find_map(|a| match a {
                Action::Finalize { csn, log, .. } => Some((*csn, log.clone())),
                _ => None,
            })
            .expect("P1 finalizes");
        assert!(log1.entries().iter().all(|e| e.msg_id != MsgId(7)), "M7 excluded");
        out.clear();

        // M8: P1 (normal) -> P3: P3 finalizes excluding M8.
        let pb8 = p[1].on_app_send(ProcessId(3), MsgId(8), pl);
        p[3].on_app_receive(ProcessId(1), MsgId(8), pl, &pb8, &mut out)
            .expect("paper §3.4.3 case analysis must accept this delivery");
        assert_eq!(p[3].status(), Status::Normal);
        let (_, log3) = out
            .iter()
            .find_map(|a| match a {
                Action::Finalize { csn, log, .. } => Some((*csn, log.clone())),
                _ => None,
            })
            .expect("P3 finalizes");
        assert!(log3.entries().iter().all(|e| e.msg_id != MsgId(8)), "M8 excluded");
        out.clear();

        // M9: P3 (normal) -> P0: P0 finalizes excluding M9.
        let pb9 = p[3].on_app_send(ProcessId(0), MsgId(9), pl);
        p[0].on_app_receive(ProcessId(3), MsgId(9), pl, &pb9, &mut out)
            .expect("paper §3.4.3 case analysis must accept this delivery");
        assert_eq!(p[0].status(), Status::Normal);
        let (_, log0) = out
            .iter()
            .find_map(|a| match a {
                Action::Finalize { csn, log, .. } => Some((*csn, log.clone())),
                _ => None,
            })
            .expect("P0 finalizes");
        assert!(log0.entries().iter().all(|e| e.msg_id != MsgId(9)), "M9 excluded");
        out.clear();

        // M6 finally arrives at P3, which has already finalized csn 1:
        // sub-case (4a), processed with no checkpoint action.
        p[3].on_app_receive(ProcessId(2), MsgId(6), pl, &pb6, &mut out)
            .expect("paper §3.4.3 case analysis must accept this delivery");
        assert!(out.is_empty());
        assert_eq!(p[3].status(), Status::Normal);

        // All four processes finalized checkpoint 1 — S_1 is complete.
        for q in &p {
            assert_eq!(q.csn(), 1);
            assert_eq!(q.status(), Status::Normal);
            assert_eq!(q.stats().get("ckpt.finalized"), 1);
        }
    }
}
