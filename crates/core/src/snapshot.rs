//! The simulated application state and its deterministic transition.
//!
//! The checkpointing algorithm is application-agnostic; what matters for
//! verifying recovery is *piecewise determinism* (Johnson & Zwaenepoel
//! \[4\]): a process's state is a pure function of its initial state and the
//! sequence of messages it has sent/received. We model state as a counter
//! plus a mixing digest — cheap, and any divergence between "live state at
//! finalization" and "restored checkpoint + replayed log" changes the
//! digest with overwhelming probability, which is exactly what the
//! recovery tests assert.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::wire::AppPayload;

/// Deterministic application state of one process.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AppSnapshot {
    /// Number of application events applied.
    pub counter: u64,
    /// Order-sensitive digest of the applied event sequence.
    pub digest: u64,
    /// Declared size of the full process image in bytes (what a real
    /// checkpoint would write; storage is charged with this).
    pub declared_bytes: u64,
}

/// Event tags mixed into the digest.
const TAG_SEND: u64 = 0x53;
const TAG_RECV: u64 = 0x52;
const TAG_INTERNAL: u64 = 0x49;

#[inline]
fn mix(h: u64, v: u64) -> u64 {
    // SplitMix64 finalizer over (h ^ rotated v): order-sensitive.
    let mut z = h ^ v.rotate_left(17) ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(h | 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl AppSnapshot {
    /// Initial state of a process whose image is `declared_bytes` large.
    pub fn initial(pid_seed: u64, declared_bytes: u64) -> Self {
        AppSnapshot { counter: 0, digest: mix(0x0C91, pid_seed), declared_bytes }
    }

    /// Apply a send event.
    pub fn apply_send(&mut self, payload: AppPayload) {
        self.counter += 1;
        self.digest = mix(self.digest, TAG_SEND ^ payload.id.wrapping_mul(31) ^ payload.len as u64);
    }

    /// Apply a receive event (the message has been processed).
    pub fn apply_recv(&mut self, payload: AppPayload) {
        self.counter += 1;
        self.digest = mix(self.digest, TAG_RECV ^ payload.id.wrapping_mul(37) ^ payload.len as u64);
    }

    /// Apply an internal computation step.
    pub fn apply_internal(&mut self, step: u64) {
        self.counter += 1;
        self.digest = mix(self.digest, TAG_INTERNAL ^ step);
    }

    /// Encoded size of the snapshot header (the durable blob; the declared
    /// image bytes are charged to storage separately, not materialised).
    pub const ENCODED_BYTES: usize = 24;

    /// Encode to a durable blob.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(Self::ENCODED_BYTES);
        b.put_u64(self.counter);
        b.put_u64(self.digest);
        b.put_u64(self.declared_bytes);
        b.freeze()
    }

    /// Decode from a durable blob.
    pub fn decode(mut buf: Bytes) -> Option<Self> {
        if buf.len() != Self::ENCODED_BYTES {
            return None;
        }
        Some(AppSnapshot {
            counter: buf.get_u64(),
            digest: buf.get_u64(),
            declared_bytes: buf.get_u64(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pl(id: u64, len: u32) -> AppPayload {
        AppPayload { id, len }
    }

    #[test]
    fn deterministic_evolution() {
        let mut a = AppSnapshot::initial(1, 1024);
        let mut b = AppSnapshot::initial(1, 1024);
        for s in [&mut a, &mut b] {
            s.apply_send(pl(1, 10));
            s.apply_recv(pl(2, 20));
            s.apply_internal(7);
        }
        assert_eq!(a, b);
        assert_eq!(a.counter, 3);
    }

    #[test]
    fn order_sensitive() {
        let mut a = AppSnapshot::initial(1, 0);
        let mut b = AppSnapshot::initial(1, 0);
        a.apply_send(pl(1, 0));
        a.apply_recv(pl(2, 0));
        b.apply_recv(pl(2, 0));
        b.apply_send(pl(1, 0));
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn event_kind_sensitive() {
        let mut a = AppSnapshot::initial(1, 0);
        let mut b = AppSnapshot::initial(1, 0);
        a.apply_send(pl(5, 5));
        b.apply_recv(pl(5, 5));
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn different_processes_differ() {
        let a = AppSnapshot::initial(1, 0);
        let b = AppSnapshot::initial(2, 0);
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut s = AppSnapshot::initial(9, 4096);
        s.apply_send(pl(1, 2));
        let d = AppSnapshot::decode(s.encode()).expect("snapshot round-trip must decode");
        assert_eq!(d, s);
        assert!(AppSnapshot::decode(Bytes::from_static(&[0u8; 23])).is_none());
    }
}
