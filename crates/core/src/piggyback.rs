//! The information piggy-backed on every application message (paper §3.4.2).
//!
//! Each process attaches its current `csn`, `stat` and `tentSet` to every
//! application message it sends. This is the *only* overhead the basic
//! algorithm imposes on the computation — experiment E6 measures it.

use crate::types::{Csn, Status, TentSet};

/// Piggybacked checkpointing state: `(M.csn, M.stat, M.tentSet)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Piggyback {
    /// Sender's checkpoint sequence number at send time.
    pub csn: Csn,
    /// Sender's status at send time.
    pub stat: Status,
    /// Sender's tentative process set at send time.
    pub tent_set: TentSet,
}

impl Piggyback {
    /// Bytes this piggyback occupies on the wire:
    /// 8 (csn) + 1 (stat) + ⌈N/8⌉ (tentSet bitmap).
    pub fn wire_bytes(&self) -> usize {
        8 + 1 + self.tent_set.wire_bytes()
    }

    /// Wire size for a system of `n` processes without constructing one.
    pub fn wire_bytes_for(n: usize) -> usize {
        8 + 1 + n.div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocpt_sim::ProcessId;

    #[test]
    fn wire_bytes_matches_static_formula() {
        for n in [2usize, 8, 9, 64, 65, 256] {
            let pb = Piggyback {
                csn: 7,
                stat: Status::Tentative,
                tent_set: TentSet::singleton(n, ProcessId(0)),
            };
            assert_eq!(pb.wire_bytes(), Piggyback::wire_bytes_for(n));
        }
    }

    #[test]
    fn grows_with_n() {
        assert!(Piggyback::wire_bytes_for(256) > Piggyback::wire_bytes_for(4));
        assert_eq!(Piggyback::wire_bytes_for(4), 10);
        assert_eq!(Piggyback::wire_bytes_for(256), 8 + 1 + 32);
    }
}
