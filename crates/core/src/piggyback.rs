//! The information piggy-backed on every application message (paper §3.4.2).
//!
//! Each process attaches its current `csn`, `stat` and `tentSet` to every
//! application message it sends. This is the *only* overhead the basic
//! algorithm imposes on the computation — experiment E6 measures it.
//!
//! The causal-compressed logging strategy additionally piggybacks the
//! sender's vector clock (sparse-encoded on the wire); every other
//! strategy leaves [`Piggyback::clock`] as `None` and the wire bytes are
//! exactly the paper's `(csn, stat, tentSet)` triple.

use ocpt_causality::VClock;

use crate::types::{Csn, Status, TentSet};

/// Piggybacked checkpointing state: `(M.csn, M.stat, M.tentSet)`, plus the
/// sender's vector clock under causal-compressed logging.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Piggyback {
    /// Sender's checkpoint sequence number at send time.
    pub csn: Csn,
    /// Sender's status at send time.
    pub stat: Status,
    /// Sender's tentative process set at send time.
    pub tent_set: TentSet,
    /// Sender's vector clock at send time (causal-compressed logging
    /// only; `None` for every other strategy).
    pub clock: Option<VClock>,
}

impl Piggyback {
    /// The paper's piggyback: `(csn, stat, tentSet)`, no clock.
    pub fn new(csn: Csn, stat: Status, tent_set: TentSet) -> Self {
        Piggyback { csn, stat, tent_set, clock: None }
    }

    /// Bytes this piggyback occupies on the wire:
    /// 8 (csn) + 1 (stat) + the tentSet's *actual* adaptive encoding,
    /// plus the sparse clock encoding when a clock rides along.
    pub fn wire_bytes(&self) -> usize {
        8 + 1 + self.tent_set.wire_bytes() + self.clock.as_ref().map_or(0, clock_wire_bytes)
    }

    /// The static dense-bitmap formula `8 + 1 + (1 + ⌈N/8⌉)` for a system
    /// of `n` processes — the worst-case bound the adaptive encoding is
    /// measured against (E6's "theory" column). Real messages report
    /// [`Piggyback::wire_bytes`], which is never larger (clock-free
    /// strategies; the causal clock is accounted separately).
    pub fn dense_wire_bytes_for(n: usize) -> usize {
        8 + 1 + TentSet::dense_wire_bytes(n)
    }
}

/// Wire size of a sparse-encoded clock: u32 count + (u32 index, u64 value)
/// per nonzero component.
pub(crate) fn clock_wire_bytes(clock: &VClock) -> usize {
    4 + 12 * clock.components().iter().filter(|&&v| v != 0).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocpt_sim::ProcessId;

    #[test]
    fn wire_bytes_never_exceed_dense_formula() {
        for n in [2usize, 8, 9, 64, 65, 256, 100_000] {
            let pb = Piggyback::new(7, Status::Tentative, TentSet::singleton(n, ProcessId(0)));
            assert!(pb.wire_bytes() <= Piggyback::dense_wire_bytes_for(n));
        }
    }

    #[test]
    fn sparse_era_is_cheaper_than_dense_formula() {
        // One tentative process out of 100k: 9 fixed + 9 sparse bytes vs
        // the 12 510-byte dense formula.
        let pb = Piggyback::new(7, Status::Tentative, TentSet::singleton(100_000, ProcessId(42)));
        assert_eq!(pb.wire_bytes(), 8 + 1 + 9);
        assert!(pb.wire_bytes() * 8 < Piggyback::dense_wire_bytes_for(100_000));
    }

    #[test]
    fn dense_formula_grows_with_n() {
        assert!(Piggyback::dense_wire_bytes_for(256) > Piggyback::dense_wire_bytes_for(4));
        assert_eq!(Piggyback::dense_wire_bytes_for(4), 8 + 1 + 1 + 1);
        assert_eq!(Piggyback::dense_wire_bytes_for(256), 8 + 1 + 1 + 32);
    }

    #[test]
    fn clock_adds_sparse_bytes_only() {
        let bare = Piggyback::new(7, Status::Tentative, TentSet::singleton(64, ProcessId(0)));
        let mut clock = VClock::zero(64);
        clock.tick(ProcessId(3));
        clock.tick(ProcessId(3));
        clock.tick(ProcessId(40));
        let with_clock = Piggyback { clock: Some(clock), ..bare.clone() };
        // Two nonzero components: 4-byte count + 2 × (4 + 8).
        assert_eq!(with_clock.wire_bytes(), bare.wire_bytes() + 4 + 2 * 12);
        let zero = Piggyback { clock: Some(VClock::zero(64)), ..bare.clone() };
        assert_eq!(zero.wire_bytes(), bare.wire_bytes() + 4);
    }
}
