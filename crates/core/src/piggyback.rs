//! The information piggy-backed on every application message (paper §3.4.2).
//!
//! Each process attaches its current `csn`, `stat` and `tentSet` to every
//! application message it sends. This is the *only* overhead the basic
//! algorithm imposes on the computation — experiment E6 measures it.

use crate::types::{Csn, Status, TentSet};

/// Piggybacked checkpointing state: `(M.csn, M.stat, M.tentSet)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Piggyback {
    /// Sender's checkpoint sequence number at send time.
    pub csn: Csn,
    /// Sender's status at send time.
    pub stat: Status,
    /// Sender's tentative process set at send time.
    pub tent_set: TentSet,
}

impl Piggyback {
    /// Bytes this piggyback occupies on the wire:
    /// 8 (csn) + 1 (stat) + the tentSet's *actual* adaptive encoding.
    pub fn wire_bytes(&self) -> usize {
        8 + 1 + self.tent_set.wire_bytes()
    }

    /// The static dense-bitmap formula `8 + 1 + (1 + ⌈N/8⌉)` for a system
    /// of `n` processes — the worst-case bound the adaptive encoding is
    /// measured against (E6's "theory" column). Real messages report
    /// [`Piggyback::wire_bytes`], which is never larger.
    pub fn dense_wire_bytes_for(n: usize) -> usize {
        8 + 1 + TentSet::dense_wire_bytes(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocpt_sim::ProcessId;

    #[test]
    fn wire_bytes_never_exceed_dense_formula() {
        for n in [2usize, 8, 9, 64, 65, 256, 100_000] {
            let pb = Piggyback {
                csn: 7,
                stat: Status::Tentative,
                tent_set: TentSet::singleton(n, ProcessId(0)),
            };
            assert!(pb.wire_bytes() <= Piggyback::dense_wire_bytes_for(n));
        }
    }

    #[test]
    fn sparse_era_is_cheaper_than_dense_formula() {
        // One tentative process out of 100k: 9 fixed + 9 sparse bytes vs
        // the 12 510-byte dense formula.
        let pb = Piggyback {
            csn: 7,
            stat: Status::Tentative,
            tent_set: TentSet::singleton(100_000, ProcessId(42)),
        };
        assert_eq!(pb.wire_bytes(), 8 + 1 + 9);
        assert!(pb.wire_bytes() * 8 < Piggyback::dense_wire_bytes_for(100_000));
    }

    #[test]
    fn dense_formula_grows_with_n() {
        assert!(Piggyback::dense_wire_bytes_for(256) > Piggyback::dense_wire_bytes_for(4));
        assert_eq!(Piggyback::dense_wire_bytes_for(4), 8 + 1 + 1 + 1);
        assert_eq!(Piggyback::dense_wire_bytes_for(256), 8 + 1 + 1 + 32);
    }
}
