//! Wire format for application envelopes and control messages.
//!
//! The simulator could pass Rust values around directly, but the threaded
//! runtime (`ocpt-runtime`) moves real bytes between OS threads, and the
//! piggyback-overhead experiment needs byte-exact accounting — so envelopes
//! get a real, versioned codec. Application payloads are *simulated*: the
//! computation's semantics don't matter to the checkpointing algorithm, so
//! a payload is `(id, len)` and `len` filler bytes on the wire.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use ocpt_causality::VClock;
use ocpt_sim::ProcessId;

use crate::piggyback::Piggyback;
use crate::types::{Csn, Status, TentSet};

/// A simulated application payload: an identity plus a declared size.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AppPayload {
    /// Workload-assigned identity (stable across checkpoint/replay).
    pub id: u64,
    /// Payload size in bytes (filler on the wire).
    pub len: u32,
}

/// Control message kinds (paper §3.5.1, plus the hierarchical group wave).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CtrlKind {
    /// "Checkpoint begin": a timed-out process notifies `P_0` (or, under
    /// the hierarchical topology, its group leader, which escalates).
    CkBgn,
    /// "Checkpoint request": the token `P_0` circulates to make every
    /// process take a tentative checkpoint. Hierarchical mode runs one
    /// token ring per group.
    CkReq,
    /// "Checkpoint end": `P_0`'s broadcast that finalization may proceed.
    /// Hierarchical mode relays it leader → members.
    CkEnd,
    /// Hierarchical only: a group leader reports to `P_0` that its
    /// intra-group `CK_REQ` ring completed.
    CkGrpDone,
}

impl CtrlKind {
    /// Stable name for counters and traces.
    pub fn name(self) -> &'static str {
        match self {
            CtrlKind::CkBgn => "CK_BGN",
            CtrlKind::CkReq => "CK_REQ",
            CtrlKind::CkEnd => "CK_END",
            CtrlKind::CkGrpDone => "CK_GRP_DONE",
        }
    }
}

/// A control message `CM(type, csn)` (paper Fig. 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CtrlMsg {
    /// The kind.
    pub kind: CtrlKind,
    /// The sender's current checkpoint sequence number.
    pub csn: Csn,
}

/// Everything that can travel on a channel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Envelope {
    /// An application message with its piggyback.
    App {
        /// Piggybacked checkpointing state.
        pb: Piggyback,
        /// The (simulated) payload.
        payload: AppPayload,
    },
    /// A control message.
    Ctrl(CtrlMsg),
}

impl Envelope {
    /// Total bytes of this envelope on the wire (headers included), for a
    /// system of `n` processes.
    pub fn wire_bytes(&self, _n: usize) -> u64 {
        match self {
            Envelope::App { pb, payload } => {
                (ENV_HEADER_BYTES + pb.wire_bytes() + APP_FIXED_BYTES) as u64 + payload.len as u64
            }
            Envelope::Ctrl(_) => (ENV_HEADER_BYTES + CTRL_FIXED_BYTES) as u64,
        }
    }
}

/// Envelope header: version(1) + discriminant(1) + n(4).
pub const ENV_HEADER_BYTES: usize = 6;
/// App fixed fields: payload id(8) + payload len(4).
pub const APP_FIXED_BYTES: usize = 12;
/// Ctrl fixed fields: kind(1) + csn(8).
pub const CTRL_FIXED_BYTES: usize = 9;
/// Wire format version.
pub const WIRE_VERSION: u8 = 1;

/// Errors from decoding an envelope.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Buffer too short for the declared structure.
    Truncated,
    /// Unknown version byte.
    BadVersion(u8),
    /// Unknown discriminant or enum value.
    BadTag(u8),
    /// Malformed tentative set bitmap.
    BadTentSet,
    /// Malformed sparse vector-clock encoding (index out of range, zero
    /// value, or non-increasing index order).
    BadClock,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "envelope truncated"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadTag(t) => write!(f, "bad tag {t}"),
            WireError::BadTentSet => write!(f, "malformed tentSet bitmap"),
            WireError::BadClock => write!(f, "malformed piggybacked vector clock"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encode an envelope. `payload.len` filler bytes are materialised for app
/// messages so the encoding length equals [`Envelope::wire_bytes`].
pub fn encode_envelope(env: &Envelope, n: usize) -> Bytes {
    let mut b = BytesMut::with_capacity(env.wire_bytes(n) as usize);
    b.put_u8(WIRE_VERSION);
    match env {
        Envelope::App { pb, payload } => {
            b.put_u8(0);
            b.put_u32(n as u32);
            b.put_u64(pb.csn);
            // Stat byte doubles as the clock-presence flag: 0/1 are the
            // original clock-free values, 2/3 announce a sparse clock
            // between the tentSet and the payload.
            b.put_u8(match (pb.stat, &pb.clock) {
                (Status::Normal, None) => 0,
                (Status::Tentative, None) => 1,
                (Status::Normal, Some(_)) => 2,
                (Status::Tentative, Some(_)) => 3,
            });
            b.extend_from_slice(&pb.tent_set.to_bytes());
            if let Some(clock) = &pb.clock {
                let nonzero = clock.components().iter().filter(|&&v| v != 0).count();
                b.put_u32(nonzero as u32);
                for (idx, &v) in clock.components().iter().enumerate() {
                    if v != 0 {
                        b.put_u32(idx as u32);
                        b.put_u64(v);
                    }
                }
            }
            b.put_u64(payload.id);
            b.put_u32(payload.len);
            b.extend(std::iter::repeat_n(0u8, payload.len as usize));
        }
        Envelope::Ctrl(cm) => {
            b.put_u8(1);
            b.put_u32(n as u32);
            b.put_u8(match cm.kind {
                CtrlKind::CkBgn => 0,
                CtrlKind::CkReq => 1,
                CtrlKind::CkEnd => 2,
                CtrlKind::CkGrpDone => 3,
            });
            b.put_u64(cm.csn);
        }
    }
    b.freeze()
}

/// Decode an envelope previously produced by [`encode_envelope`].
pub fn decode_envelope(mut buf: Bytes) -> Result<(Envelope, usize), WireError> {
    if buf.len() < ENV_HEADER_BYTES {
        return Err(WireError::Truncated);
    }
    let version = buf.get_u8();
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let disc = buf.get_u8();
    let n = buf.get_u32() as usize;
    match disc {
        0 => {
            if buf.len() < 9 {
                return Err(WireError::Truncated);
            }
            let csn: Csn = buf.get_u64();
            let (stat, has_clock) = match buf.get_u8() {
                0 => (Status::Normal, false),
                1 => (Status::Tentative, false),
                2 => (Status::Normal, true),
                3 => (Status::Tentative, true),
                t => return Err(WireError::BadTag(t)),
            };
            // The tentSet encoding is self-describing (adaptive repr): the
            // decoder reports how many bytes it consumed.
            let (tent_set, ts_len) = TentSet::from_wire(n, &buf).ok_or(WireError::BadTentSet)?;
            if buf.len() < ts_len {
                return Err(WireError::Truncated);
            }
            buf.advance(ts_len);
            let clock = if has_clock { Some(decode_sparse_clock(&mut buf, n)?) } else { None };
            if buf.len() < APP_FIXED_BYTES {
                return Err(WireError::Truncated);
            }
            let id = buf.get_u64();
            let len = buf.get_u32();
            if buf.len() < len as usize {
                return Err(WireError::Truncated);
            }
            Ok((
                Envelope::App {
                    pb: Piggyback { csn, stat, tent_set, clock },
                    payload: AppPayload { id, len },
                },
                n,
            ))
        }
        1 => {
            if buf.len() < CTRL_FIXED_BYTES {
                return Err(WireError::Truncated);
            }
            let kind = match buf.get_u8() {
                0 => CtrlKind::CkBgn,
                1 => CtrlKind::CkReq,
                2 => CtrlKind::CkEnd,
                3 => CtrlKind::CkGrpDone,
                t => return Err(WireError::BadTag(t)),
            };
            let csn = buf.get_u64();
            Ok((Envelope::Ctrl(CtrlMsg { kind, csn }), n))
        }
        t => Err(WireError::BadTag(t)),
    }
}

/// Decode the sparse clock encoding: u32 count, then `(u32 index, u64
/// value)` per nonzero component, indices strictly increasing. The
/// canonical form is enforced — zero values, out-of-range or repeated
/// indices are rejected so every clock has exactly one wire image.
fn decode_sparse_clock(buf: &mut Bytes, n: usize) -> Result<VClock, WireError> {
    if buf.len() < 4 {
        return Err(WireError::Truncated);
    }
    let count = buf.get_u32() as usize;
    if count > n {
        return Err(WireError::BadClock);
    }
    if buf.len() < count * 12 {
        return Err(WireError::Truncated);
    }
    let mut clock = VClock::zero(n);
    let mut prev: Option<u32> = None;
    for _ in 0..count {
        let idx = buf.get_u32();
        let value = buf.get_u64();
        if idx as usize >= n || value == 0 || prev.is_some_and(|p| idx <= p) {
            return Err(WireError::BadClock);
        }
        clock.set(ProcessId(idx), value);
        prev = Some(idx);
    }
    Ok(clock)
}

/// Convenience: the sending process of an envelope isn't part of the
/// envelope itself; transports carry `(src, dst, Envelope)`. This struct is
/// the framed triple used by the threaded runtime.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Framed {
    /// Sender.
    pub src: ProcessId,
    /// Receiver.
    pub dst: ProcessId,
    /// Content.
    pub env: Envelope,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_app(n: usize) -> Envelope {
        let mut ts = TentSet::singleton(n, ProcessId(1));
        ts.insert(ProcessId(0));
        Envelope::App {
            pb: Piggyback::new(9, Status::Tentative, ts),
            payload: AppPayload { id: 1234, len: 100 },
        }
    }

    #[test]
    fn app_round_trip() {
        let env = sample_app(5);
        let enc = encode_envelope(&env, 5);
        assert_eq!(enc.len() as u64, env.wire_bytes(5));
        let (dec, n) = decode_envelope(enc).expect("wire round-trip must decode");
        assert_eq!(dec, env);
        assert_eq!(n, 5);
    }

    #[test]
    fn ctrl_round_trip() {
        for kind in [CtrlKind::CkBgn, CtrlKind::CkReq, CtrlKind::CkEnd, CtrlKind::CkGrpDone] {
            let env = Envelope::Ctrl(CtrlMsg { kind, csn: 3 });
            let enc = encode_envelope(&env, 8);
            assert_eq!(enc.len() as u64, env.wire_bytes(8));
            let (dec, _) = decode_envelope(enc).expect("wire round-trip must decode");
            assert_eq!(dec, env);
        }
    }

    #[test]
    fn ctrl_is_small_and_constant() {
        let env = Envelope::Ctrl(CtrlMsg { kind: CtrlKind::CkBgn, csn: u64::MAX });
        assert_eq!(env.wire_bytes(2), env.wire_bytes(256));
        assert_eq!(env.wire_bytes(2), (ENV_HEADER_BYTES + CTRL_FIXED_BYTES) as u64);
    }

    #[test]
    fn app_overhead_grows_with_n() {
        let e4 = sample_app(4);
        let e256 = {
            let ts = TentSet::singleton(256, ProcessId(1));
            Envelope::App {
                pb: Piggyback::new(9, Status::Tentative, ts),
                payload: AppPayload { id: 1234, len: 100 },
            }
        };
        assert!(e256.wire_bytes(256) > e4.wire_bytes(4));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let enc = encode_envelope(&sample_app(5), 5);
        for cut in [0, 3, 5, 12, enc.len() - 1] {
            let r = decode_envelope(enc.slice(0..cut));
            assert!(r.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn bad_version_and_tag() {
        let enc = encode_envelope(&sample_app(5), 5);
        let mut raw = BytesMut::from(&enc[..]);
        raw[0] = 99;
        assert!(matches!(decode_envelope(raw.clone().freeze()), Err(WireError::BadVersion(99))));
        raw[0] = WIRE_VERSION;
        raw[1] = 7; // bad discriminant
        assert!(matches!(decode_envelope(raw.freeze()), Err(WireError::BadTag(7))));
    }

    fn sample_clocked(n: usize) -> Envelope {
        let mut clock = VClock::zero(n);
        clock.set(ProcessId(0), 3);
        clock.set(ProcessId(2), 41);
        let Envelope::App { pb, payload } = sample_app(n) else { unreachable!() };
        Envelope::App { pb: Piggyback { clock: Some(clock), ..pb }, payload }
    }

    #[test]
    fn clocked_app_round_trip() {
        let env = sample_clocked(5);
        let enc = encode_envelope(&env, 5);
        assert_eq!(enc.len() as u64, env.wire_bytes(5));
        let (dec, n) = decode_envelope(enc).expect("clocked round-trip must decode");
        assert_eq!(dec, env);
        assert_eq!(n, 5);
    }

    #[test]
    fn clock_costs_nothing_when_absent() {
        // The stat byte doubles as the clock flag, so clock-free envelopes
        // are byte-for-byte what they were before clocks existed.
        let plain = sample_app(5);
        let clocked = sample_clocked(5);
        assert_eq!(clocked.wire_bytes(5), plain.wire_bytes(5) + 4 + 2 * 12);
    }

    #[test]
    fn malformed_clocks_rejected() {
        let enc = encode_envelope(&sample_clocked(5), 5);
        // Locate the sparse clock: header(6) + csn(8) + stat(1) + tentSet.
        let Envelope::App { pb, .. } = sample_app(5) else { unreachable!() };
        let off = 6 + 8 + 1 + pb.tent_set.to_bytes().len();
        let corrupt = |f: &dyn Fn(&mut BytesMut)| {
            let mut raw = BytesMut::from(&enc[..]);
            f(&mut raw);
            decode_envelope(raw.freeze())
        };
        // Zero-valued component breaks canonical form.
        let r = corrupt(&|raw| raw[off + 4..off + 12 + 4].fill(0));
        assert_eq!(r, Err(WireError::BadClock));
        // Out-of-range index (idx ≥ n).
        let r = corrupt(&|raw| raw[off + 4..off + 8].copy_from_slice(&9u32.to_be_bytes()));
        assert_eq!(r, Err(WireError::BadClock));
        // Non-increasing indices (second idx set equal to the first).
        let r = corrupt(&|raw| raw[off + 16..off + 20].copy_from_slice(&0u32.to_be_bytes()));
        assert_eq!(r, Err(WireError::BadClock));
        // Component count beyond the universe size.
        let r = corrupt(&|raw| raw[off..off + 4].copy_from_slice(&6u32.to_be_bytes()));
        assert_eq!(r, Err(WireError::BadClock));
        // Truncation inside the clock body.
        let cut = enc.slice(0..off + 10);
        assert_eq!(decode_envelope(cut), Err(WireError::Truncated));
    }

    #[test]
    fn zero_len_payload() {
        let env = Envelope::App {
            pb: Piggyback::new(0, Status::Normal, TentSet::empty(2)),
            payload: AppPayload { id: 0, len: 0 },
        };
        let (dec, _) =
            decode_envelope(encode_envelope(&env, 2)).expect("wire round-trip must decode");
        assert_eq!(dec, env);
    }
}
