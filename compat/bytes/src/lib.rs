//! Vendored, dependency-free subset of the `bytes` crate.
//!
//! The build environment for this repository has no network access to a
//! crates.io mirror, so the workspace carries the small slice of the
//! `bytes` API it actually uses as a local path dependency. Semantics
//! match the upstream crate for the implemented surface:
//!
//! - [`Bytes`]: a cheaply cloneable, sliceable, immutable byte buffer
//!   (reference-counted; `clone`/`slice`/`split_to` never copy data).
//! - [`BytesMut`]: a growable buffer that freezes into [`Bytes`].
//! - [`Buf`] / [`BufMut`]: the big-endian cursor read/write traits.
//!
//! Only what the workspace needs is implemented; this is not a general
//! replacement for the upstream crate.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Read cursor over a contiguous byte buffer (big-endian getters).
pub trait Buf {
    /// Bytes left between the cursor and the end of the buffer.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Advance the cursor by `cnt` bytes. Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// True while any unread bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(raw)
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }
}

/// Write cursor appending to a growable buffer (big-endian putters).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// A cheaply cloneable immutable byte buffer: an `Arc<[u8]>` plus a view
/// window, so `clone`, `slice` and `split_to` are O(1) refcount bumps.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// A buffer viewing a static slice (copied once; upstream borrows, but
    /// callers only rely on value semantics).
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    /// Copy an arbitrary slice into a new buffer.
    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// A sub-view of this buffer (no copy). Panics on out-of-range or
    /// inverted bounds, like upstream.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let lo = match range.start_bound() {
            Bound::Included(&i) => i,
            Bound::Excluded(&i) => i + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&i) => i + 1,
            Bound::Excluded(&i) => i,
            Bound::Unbounded => len,
        };
        assert!(lo <= hi && hi <= len, "slice {lo}..{hi} out of range for {len}");
        Bytes { data: self.data.clone(), start: self.start + lo, end: self.start + hi }
    }

    /// Split off and return the first `at` bytes, leaving the rest (no copy).
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to {at} out of range for {}", self.len());
        let head = Bytes { data: self.data.clone(), start: self.start, end: self.start + at };
        self.start += at;
        head
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance {cnt} out of range for {}", self.len());
        self.start += cnt;
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes { data: v.into(), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Bytes {
        b.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Convert into an immutable [`Bytes`] (no copy).
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Extend<u8> for BytesMut {
    fn extend<T: IntoIterator<Item = u8>>(&mut self, iter: T) {
        self.data.extend(iter);
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> BytesMut {
        BytesMut { data: s.to_vec() }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::from(self.data.clone()), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_getters_putters() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u16(0x1234);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(0x0102_0304_0506_0708);
        b.extend_from_slice(&[9, 9]);
        let mut r = b.freeze();
        assert_eq!(r.len(), 17);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 0x0102_0304_0506_0708);
        assert!(r.has_remaining());
        r.advance(2);
        assert!(!r.has_remaining());
    }

    #[test]
    fn slice_and_split_are_views() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        let mut t = s.clone();
        let head = t.split_to(1);
        assert_eq!(&head[..], &[2]);
        assert_eq!(&t[..], &[3, 4]);
        // Full-range slice equals the original.
        assert_eq!(b.slice(..), b);
    }

    #[test]
    fn equality_is_by_content() {
        assert_eq!(Bytes::from_static(b"abc"), Bytes::from(b"abc".to_vec()));
        assert_eq!(Bytes::from(vec![1, 2, 3]).slice(1..), Bytes::from(vec![2, 3]));
    }

    #[test]
    fn mutation_through_index() {
        let mut m = BytesMut::from(&b"xyz"[..]);
        m[0] = b'a';
        assert_eq!(m.freeze(), Bytes::from_static(b"ayz"));
    }

    #[test]
    #[should_panic]
    fn slice_out_of_range_panics() {
        Bytes::from(vec![1]).slice(0..2);
    }
}
