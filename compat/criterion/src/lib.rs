//! Vendored, dependency-free subset of the `criterion` crate.
//!
//! The build environment for this repository has no network access to a
//! crates.io mirror, so the workspace carries the slice of the criterion
//! API its benches use as a local path dependency: `criterion_group!` /
//! `criterion_main!`, [`Criterion`], benchmark groups with
//! [`BenchmarkGroup::sample_size`] / [`BenchmarkGroup::throughput`] /
//! [`BenchmarkGroup::bench_with_input`], and [`Bencher::iter`].
//!
//! Measurement model: each sample times a calibrated batch of iterations
//! with `std::time::Instant`; the reported figure is the best (minimum)
//! per-iteration time across samples, which is robust to scheduler noise.
//! There are no plots, no statistics files, and no saved baselines.
//!
//! Run modes, following cargo's conventions for `harness = false` targets:
//! `cargo bench` passes `--bench` and gets full measurement; `cargo test`
//! runs the same executables *without* `--bench`, and each benchmark body
//! executes exactly once as a smoke test so assertions inside benches
//! still fire in the test suite.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterised benchmark: `name/param`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build `name/param`.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", name.into(), param) }
    }

    /// Build from a parameter alone.
    pub fn from_parameter(param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { id: param.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Drives one benchmark's timing loop.
pub struct Bencher {
    mode: Mode,
    samples: usize,
    /// Best observed per-iteration nanoseconds (set by `iter`).
    best_ns: f64,
    iters_done: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// Full measurement (`--bench` present).
    Measure,
    /// Run the body once (plain `cargo test` on a harness=false target).
    Smoke,
}

impl Bencher {
    /// Time the closure. In measurement mode, runs calibrated batches and
    /// records the best per-iteration time; in smoke mode runs it once.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.mode == Mode::Smoke {
            std::hint::black_box(f());
            self.iters_done += 1;
            return;
        }
        // Calibrate: grow the batch until it takes >= 1ms.
        let mut batch: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 24 {
                break;
            }
            batch *= 2;
        }
        let mut best = f64::INFINITY;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let ns = t.elapsed().as_nanos() as f64 / batch as f64;
            if ns < best {
                best = ns;
            }
            self.iters_done += batch;
        }
        self.best_ns = best;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate per-iteration throughput for reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id.clone(), |b| f(b, input));
        self
    }

    /// Benchmark a closure with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id.clone(), |b| f(b));
        self
    }

    fn run(&self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return;
        }
        let mut b = Bencher {
            mode: self.criterion.mode,
            samples: self.sample_size,
            best_ns: f64::NAN,
            iters_done: 0,
        };
        f(&mut b);
        match b.mode {
            Mode::Smoke => println!("{full}: ok (smoke, {} iter)", b.iters_done.max(1)),
            Mode::Measure => {
                let mut line = format!("{full}: {} /iter", fmt_ns(b.best_ns));
                if let Some(t) = self.throughput {
                    let per_sec = match t {
                        Throughput::Elements(n) => {
                            format!("{} elem/s", fmt_rate(n as f64 / (b.best_ns * 1e-9)))
                        }
                        Throughput::Bytes(n) => {
                            format!("{}B/s", fmt_rate(n as f64 / (b.best_ns * 1e-9)))
                        }
                    };
                    line.push_str(&format!("  ({per_sec})"));
                }
                println!("{line}");
            }
        }
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

fn fmt_ns(ns: f64) -> String {
    if !ns.is_finite() {
        "<unmeasured>".to_string()
    } else if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn fmt_rate(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2} G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} k", v / 1e3)
    } else {
        format!("{v:.0} ")
    }
}

/// Entry point for a bench target.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes --bench to harness=false executables;
        // cargo test runs them bare. Anything that isn't a flag filters
        // benchmark names, like upstream.
        let mut mode = Mode::Smoke;
        let mut filter = None;
        for a in std::env::args().skip(1) {
            match a.as_str() {
                "--bench" => mode = Mode::Measure,
                "--test" => mode = Mode::Smoke,
                s if !s.starts_with('-') => filter = Some(s.to_string()),
                _ => {}
            }
        }
        Criterion { mode, filter }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 20, throughput: None }
    }

    /// Benchmark a closure at top level.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let g = BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 20,
            throughput: None,
        };
        g.run("-", |b| f(b));
        self
    }

    /// Upstream-compatible no-op (config already comes from args).
    pub fn configure_from_args(self) -> Self {
        self
    }

    fn matches(&self, full: &str) -> bool {
        self.filter.as_deref().map_or(true, |f| full.contains(f))
    }
}

/// Group benchmark functions under one registry entry.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion { mode: Mode::Smoke, filter: None };
        let mut runs = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Elements(1));
            g.bench_with_input(BenchmarkId::new("b", 1), &(), |b, _| b.iter(|| runs += 1));
            g.finish();
        }
        assert_eq!(runs, 1);
    }

    #[test]
    fn measure_mode_reports_finite_time() {
        let mut c = Criterion { mode: Mode::Measure, filter: None };
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        let mut x = 0u64;
        g.bench_with_input(BenchmarkId::new("b", 1), &(), |b, _| {
            b.iter(|| {
                x = x.wrapping_add(1);
                x
            })
        });
        g.finish();
        assert!(x > 2);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion { mode: Mode::Measure, filter: Some("nomatch".into()) };
        let mut runs = 0u32;
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("b", 1), &(), |b, _| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 0);
    }
}
