//! Vendored, dependency-free subset of the `proptest` crate.
//!
//! The build environment for this repository has no network access to a
//! crates.io mirror, so the workspace carries the slice of the proptest
//! API its test-suite uses as a local path dependency:
//!
//! - the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! - [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_oneof!`],
//! - [`Strategy`] with `prop_map` / `prop_flat_map`, range and tuple
//!   strategies, [`any`], [`Just`], `prop::collection::vec`,
//!   `prop::sample::Index`.
//!
//! Differences from upstream: cases are generated from a fixed
//! deterministic seed per test (override with `PROPTEST_SEED`), there is
//! no shrinking, and no failure persistence. The default case count is
//! 256, like upstream; override globally with `PROPTEST_CASES`.

#![forbid(unsafe_code)]

use std::marker::PhantomData;

// ---------- deterministic RNG ----------

/// SplitMix64-based deterministic RNG driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded RNG for a named test: deterministic per (test name, seed).
    pub fn for_test(name: &str) -> TestRng {
        let mut seed: u64 = match std::env::var("PROPTEST_SEED") {
            Ok(s) => s.parse().unwrap_or(0x0C97_0C97_0C97_0C97),
            Err(_) => 0x0C97_0C97_0C97_0C97,
        };
        for b in name.bytes() {
            seed = seed.wrapping_mul(0x100_0000_01B3).wrapping_add(b as u64);
        }
        TestRng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Widening-multiply rejection-free mapping (small bias is fine for
        // test-case generation).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Resolve the effective case count (`PROPTEST_CASES` overrides).
pub fn resolve_cases(configured: u32) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(s) => s.parse().unwrap_or(configured),
        Err(_) => configured,
    }
}

// ---------- config and errors ----------

/// Per-invocation configuration (only `cases` is meaningful here).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Upstream-compatible helper: a config with the given case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Error/result plumbing compatible with upstream `test_runner`.
pub mod test_runner {
    /// A failed test case (carries the failure message).
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Build a failure from any displayable reason.
        pub fn fail<M: std::fmt::Display>(m: M) -> TestCaseError {
            TestCaseError(m.to_string())
        }

        /// Upstream alias for [`TestCaseError::fail`].
        pub fn reject<M: std::fmt::Display>(m: M) -> TestCaseError {
            TestCaseError::fail(m)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// Result alias used by generated test bodies.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

// ---------- Strategy core ----------

/// A generator of values of type `Value`.
///
/// Object-safe for `generate`; the combinators require `Sized`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy it selects.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (built by [`prop_oneof!`]).
pub struct Union<T> {
    alts: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Build from the alternatives; panics if empty.
    pub fn new(alts: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!alts.is_empty(), "prop_oneof! needs at least one alternative");
        Union { alts }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.alts.len() as u64) as usize;
        self.alts[i].generate(rng)
    }
}

// ---------- ranges ----------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                let draw = if width > u64::MAX as u128 {
                    // Only reachable for 128-bit-wide u64/i64 ranges.
                    rng.next_u64() as u128
                } else {
                    rng.below(width as u64) as u128
                };
                (self.start as i128 + draw as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let draw = if width > u64::MAX as u128 {
                    rng.next_u64() as u128
                } else {
                    rng.below(width as u64) as u128
                };
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// ---------- tuples ----------

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// ---------- any / Arbitrary ----------

/// Types with a canonical unconstrained strategy.
pub trait Arbitrary {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, magnitude-varied — good enough for tests.
        (rng.unit_f64() - 0.5) * 2e12
    }
}

/// Strategy form of [`Arbitrary`]; see [`any`].
#[derive(Clone, Debug, Default)]
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---------- prop:: namespace ----------

/// Upstream-style `prop::` namespace (`prop::collection`, `prop::sample`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Accepted sizes for [`vec`]: an exact count or a half-open range.
        #[derive(Clone, Copy, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // exclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> SizeRange {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> SizeRange {
                assert!(r.start < r.end, "empty size range");
                SizeRange { lo: r.start, hi: r.end }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
                SizeRange { lo: *r.start(), hi: *r.end() + 1 }
            }
        }

        /// A `Vec` of values from `elem`, sized within `size`.
        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { elem, size: size.into() }
        }

        /// See [`vec`].
        #[derive(Clone, Debug)]
        pub struct VecStrategy<S> {
            elem: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u64;
                let len = self.size.lo + if span <= 1 { 0 } else { rng.below(span) as usize };
                (0..len).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }

    /// Sampling helpers.
    pub mod sample {
        use crate::{Arbitrary, TestRng};

        /// An abstract index into a collection of as-yet-unknown size.
        #[derive(Clone, Copy, Debug)]
        pub struct Index(usize);

        impl Index {
            /// Resolve against a concrete collection size (> 0).
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                self.0 % len
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Index {
                Index(rng.next_u64() as usize)
            }
        }
    }
}

// ---------- macros ----------

/// Fail the current property with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fail the current property unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} ({:?} != {:?})", format!($($fmt)*), a, b),
            ));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        // The expected `Vec<Box<dyn Strategy<..>>>` type flows from
        // `Union::new` into the vec! elements, unsizing each Box.
        $crate::Union::new(vec![$(::std::boxed::Box::new($strat)),+])
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    // One property function, then recurse on the rest.
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __cases = $crate::resolve_cases(__cfg.cases);
            let mut __rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        __case,
                        __cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    (($cfg:expr)) => {};
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `fn name(binding in strategy, ...) { body }` items (attributes such as
/// `#[test]` and doc comments pass through).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// One-stop import, mirroring upstream's `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Any, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = (5u64..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let s = (-5i64..6).generate(&mut rng);
            assert!((-5..6).contains(&s));
            let f = (-1e6f64..1e6).generate(&mut rng);
            assert!((-1e6..1e6).contains(&f));
        }
    }

    #[test]
    fn vec_sizes_respect_bounds() {
        let mut rng = crate::TestRng::for_test("vec");
        for _ in 0..200 {
            let v = prop::collection::vec(0u8..10, 1..4).generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            let exact = prop::collection::vec(0u8..10, 3).generate(&mut rng);
            assert_eq!(exact.len(), 3);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 50, ..ProptestConfig::default() })]

        /// The macro pipeline itself: bindings, prop_assert, early return.
        #[test]
        fn macro_smoke(x in 1u32..100, pair in (0u8..4, any::<bool>()), v in prop::collection::vec(0u16..9, 0..5)) {
            prop_assert!(x >= 1 && x < 100);
            prop_assert_eq!(pair.0 as usize + v.len(), pair.0 as usize + v.len());
            if v.is_empty() {
                return Ok(());
            }
            let one = prop_oneof![Just(1u8), Just(1u8)];
            let mut rng = crate::TestRng::for_test("inner");
            prop_assert_eq!(one.generate(&mut rng), 1u8);
        }
    }
}
