//! Domain scenario: a master–worker "transaction processor" loses a worker
//! mid-run. Compare what recovery costs under the paper's algorithm
//! (bounded rollback to the recovery line `S_k`, with byte-exact state
//! restoration from `CT + logSet`) against uncoordinated checkpointing
//! (the domino effect, paper §1).
//!
//! ```sh
//! cargo run --release --example recovery_drill
//! ```

use ocpt::harness::{coordinated_rollback, domino_rollback, verify_restored_states};
use ocpt::prelude::*;
use ocpt_harness::workload::{Pattern, PayloadSpec, Timing};

fn scenario(algo: &Algo) -> RunConfig {
    let n = 8;
    let mut cfg = RunConfig::new(n, 777);
    cfg.workload = WorkloadSpec {
        topology: Topology::Star,
        pattern: Pattern::MasterWorker,
        timing: Timing::Poisson { mean: SimDuration::from_millis(3) },
        payload: PayloadSpec::Uniform(128, 2048),
    };
    cfg.checkpoint_interval = SimDuration::from_millis(400);
    cfg.workload_duration = SimDuration::from_secs(4);
    cfg.state_bytes = 2 * 1024 * 1024;
    // Worker P5 dies at t = 3 s.
    cfg.faults =
        FaultPlan::single(ProcessId(5), SimTime::from_secs(3), SimDuration::from_millis(50));
    cfg.stop_on_crash = true;
    let _ = algo;
    cfg
}

fn main() {
    println!("=== Recovery drill: worker P5 crashes at t = 3s ===\n");

    // --- The paper's algorithm ---
    let r = run(&Algo::ocpt(), scenario(&Algo::ocpt()));
    assert!(r.protocol_error.is_none());
    let obs = r.observer.as_ref().expect("observer on");
    let line = r.recovery_line;
    let roll = coordinated_rollback(obs, line);
    let total: u64 = obs.positions().iter().sum();
    println!("[ocpt] durable recovery line: S_{line}");
    println!(
        "[ocpt] rollback: {} of {} events lost ({:.1}%), {} processes roll back, cascade rounds = {}",
        roll.events_lost,
        total,
        100.0 * roll.events_lost as f64 / total.max(1) as f64,
        roll.processes_rolled_back,
        roll.cascade_rounds
    );
    let verified = verify_restored_states(&r, line).expect("restoration must verify");
    println!(
        "[ocpt] {verified} restored states verified byte-exact: CT + selective log replay ✓\n"
    );

    // --- Uncoordinated checkpointing: the domino effect ---
    let r = run(&Algo::Uncoordinated, scenario(&Algo::Uncoordinated));
    assert!(r.protocol_error.is_none());
    let obs = r.observer.as_ref().expect("observer on");
    let roll = domino_rollback(obs, ProcessId(5));
    let total: u64 = obs.positions().iter().sum();
    println!(
        "[uncoordinated] rollback: {} of {} events lost ({:.1}%), {} processes roll back,\n\
         [uncoordinated] {} fell to their INITIAL state, cascade rounds = {} — the domino effect",
        roll.events_lost,
        total,
        100.0 * roll.events_lost as f64 / total.max(1) as f64,
        roll.processes_rolled_back,
        roll.rolled_to_initial,
        roll.cascade_rounds
    );
}
