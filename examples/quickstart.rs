//! Quickstart: run the paper's algorithm on a simulated 8-process system,
//! collect consistent global checkpoints, and verify Theorem 2 on each.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ocpt::prelude::*;

fn main() {
    // An 8-process system exchanging ~1 KiB messages every ~5 ms, taking a
    // coordination-light checkpoint round every second, over 4 s of work.
    let mut cfg = RunConfig::new(8, 42);
    cfg.workload = WorkloadSpec::uniform_mesh(SimDuration::from_millis(5));
    cfg.checkpoint_interval = SimDuration::from_secs(1);
    cfg.workload_duration = SimDuration::from_secs(4);
    cfg.state_bytes = 2 * 1024 * 1024;

    let result = run_checked(&Algo::ocpt(), cfg);

    println!("algorithm        : {}", result.algo);
    println!("virtual makespan : {}", result.makespan);
    println!("app messages     : {}", result.app_messages);
    println!(
        "piggyback bytes  : {} ({} per message)",
        result.piggyback_bytes,
        result.piggyback_bytes / result.app_messages.max(1)
    );
    println!("control messages : {}", result.ctrl_messages);
    println!("rounds completed : {}", result.complete_rounds);
    println!("recovery line    : S_{}", result.recovery_line);
    println!("peak writers     : {} (stable-storage contention)", result.storage.peak_writers);
    println!("storage stall    : {}", result.storage.total_stall);

    let verified = result.verify_consistency().expect("observer was on");
    println!("\nTheorem 2 check  : {verified} global checkpoint(s), all consistent ✓");

    // Every durable checkpoint on the recovery line restores the exact
    // state the process had at its finalization cut (CT + log replay).
    let line = result.recovery_line;
    let restored = ocpt::harness::verify_restored_states(&result, line).expect("restorable");
    println!("recovery check   : {restored} process state(s) restored byte-exact at S_{line} ✓");
}
