//! Domain scenario: a 4×4 stencil computation (nearest-neighbour halo
//! exchange, the classic HPC workload the checkpointing literature —
//! Oliner et al. [9], Zhang et al. [12] — worries about) checkpointed by
//! each algorithm, comparing stable-storage contention and overhead.
//!
//! ```sh
//! cargo run --release --example grid_stencil
//! ```

use ocpt::metrics::Table;
use ocpt::prelude::*;
use ocpt_harness::workload::{Pattern, PayloadSpec, Timing};

fn main() {
    let n = 16; // 4×4 grid
    let mut table = Table::new(
        "4x4 stencil: checkpointing overhead by algorithm",
        &[
            "algo",
            "rounds",
            "peak_writers",
            "stall_ms",
            "blocked_ms",
            "forced_ckpts",
            "ctrl_msgs",
            "consistent",
        ],
    );

    for algo in Algo::comparison_set() {
        let mut cfg = RunConfig::new(n, 2026);
        cfg.workload = WorkloadSpec {
            topology: Topology::Grid { cols: 4 },
            pattern: Pattern::Uniform,
            // A halo exchange every ~2 ms per rank, 8 KiB halos.
            timing: Timing::Uniform {
                gap: SimDuration::from_millis(2),
                jitter: SimDuration::from_micros(200),
            },
            payload: PayloadSpec::Fixed(8 * 1024),
        };
        // 16 ranks × 2 MiB per 2 s ≈ 16 MB/s against a 50 MB/s server:
        // busy, not saturated — contention here measures write clustering.
        cfg.checkpoint_interval = SimDuration::from_secs(2);
        cfg.workload_duration = SimDuration::from_secs(5);
        cfg.state_bytes = 2 * 1024 * 1024;

        let r = run(&algo, cfg);
        assert!(r.protocol_error.is_none(), "{}: {:?}", r.algo, r.protocol_error);
        let consistent = if r.algo == "uncoordinated" {
            "n/a".to_string()
        } else {
            match r.verify_consistency() {
                Ok(k) => format!("{k} ✓"),
                Err(e) => format!("FAIL: {e}"),
            }
        };
        table.row(&[
            r.algo.into(),
            r.complete_rounds.to_string(),
            r.storage.peak_writers.to_string(),
            format!("{:.2}", r.storage.total_stall.as_secs_f64() * 1e3),
            format!("{:.2}", r.blocked_time.as_secs_f64() * 1e3),
            r.counters.get("ckpt.forced_before_processing").to_string(),
            r.ctrl_messages.to_string(),
            consistent,
        ]);
    }

    println!("{}", table.render());
    println!(
        "Reading guide: the paper's algorithm (ocpt) should show peak_writers ≈ 1–2 and\n\
         ~zero stall (writes placed at each process's convenience), no blocking (unlike\n\
         koo-toueg) and no forced pre-processing checkpoints (unlike cic), at the cost\n\
         of piggybacks and a few control messages per quiet round."
    );
}
