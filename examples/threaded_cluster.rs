//! The protocol on real OS threads: a 4-node cluster exchanging encoded
//! messages over channels, taking three checkpoint rounds under live
//! traffic, with consistency checked against genuine thread interleavings.
//!
//! ```sh
//! cargo run --release --example threaded_cluster
//! ```

use std::time::Duration;

use ocpt::prelude::*;
use ocpt::runtime::Cluster;

fn main() {
    let n = 4;
    let cfg = OcptConfig {
        convergence_timeout: SimDuration::from_millis(50),
        state_bytes: 64 * 1024,
        ..OcptConfig::default()
    };
    let cluster = Cluster::start(n, cfg);

    for round in 1..=3u64 {
        // Some cross traffic...
        for i in 0..n as u32 {
            for j in 0..n as u32 {
                if i != j {
                    cluster.send_app(ProcessId(i), ProcessId(j), 512);
                }
            }
        }
        // ...then someone initiates a checkpoint (a different node each round).
        cluster.checkpoint(ProcessId((round % n as u64) as u32));
        // More traffic spreads the piggybacked knowledge; the convergence
        // timer covers whatever the traffic misses.
        for i in 0..n as u32 {
            cluster.send_app(ProcessId(i), ProcessId((i + 1) % n as u32), 256);
        }
        cluster
            .wait_for_round(round, Duration::from_secs(10))
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        println!("round {round}: all {n} nodes finalized checkpoint {round}");
    }

    let line = cluster.store().recovery_line(n);
    println!("\nstable store: {} records, recovery line S_{line}", cluster.store().len());

    // Judge every complete round against the oracle fed in real time.
    {
        let obs = cluster.observer().lock();
        for csn in obs.complete_csns() {
            let report = obs.judge(csn).expect("complete");
            assert!(report.is_consistent(), "S_{csn} inconsistent!");
            println!(
                "S_{csn}: consistent ✓ ({} in-transit message(s) covered by sender logs)",
                report.in_transit.len()
            );
        }
    }
    cluster.shutdown();
    println!("\ncluster shut down cleanly");
}
