//! Executable replays of the paper's figures.
//!
//! * **Figure 1** — a consistent (`S_1`) and an inconsistent (`S_2`, orphan
//!   `M5`) global checkpoint, judged by the causality oracle.
//! * **Figure 2** — the basic algorithm walkthrough: `P_0` initiates,
//!   knowledge spreads on `M2..M5`, `C_{2,1} = CT_{2,1} ∪ {M5, M6}`,
//!   `M8`/`M9` are excluded from the logs they trigger.
//! * **Figure 5** — the convergence problem and its control-message fix:
//!   sparse traffic stalls the basic algorithm; `CK_BGN → CK_REQ ring →
//!   CK_END` converges it.
//!
//! ```sh
//! cargo run --example paper_figures
//! ```

use ocpt::causality::{Cut, GlobalObserver};
use ocpt::prelude::*;

fn p(i: u32) -> ProcessId {
    ProcessId(i)
}

fn main() {
    figure1();
    figure2();
    figure5();
}

/// Paper Figure 1: the definition of consistency, machine-checked.
fn figure1() {
    println!("=== Figure 1: consistent vs inconsistent global checkpoints ===\n");
    let mut obs = GlobalObserver::new(3);
    // Pre-S1 traffic: M1 from P0 to P1.
    obs.on_send(p(0), MsgId(1));
    obs.on_recv(p(1), MsgId(1));
    let s1 = Cut::from_positions(vec![1, 1, 0]);
    // M5 from P1 to P2 crosses the S2 line the wrong way.
    obs.on_send(p(1), MsgId(5));
    obs.on_recv(p(2), MsgId(5));
    let s2 = Cut::from_positions(vec![1, 1, 1]);

    let r1 = obs.judge_cut(1, &s1);
    let r2 = obs.judge_cut(2, &s2);
    println!("S1: consistent = {}", r1.is_consistent());
    println!(
        "S2: consistent = {} (orphans: {:?})",
        r2.is_consistent(),
        r2.orphans.iter().map(|o| format!("M{}", o.msg.0)).collect::<Vec<_>>()
    );
    assert!(r1.is_consistent() && !r2.is_consistent());
    println!();
}

/// Paper Figure 2: the basic algorithm, message for message.
fn figure2() {
    println!("=== Figure 2: basic algorithm walkthrough (4 processes) ===\n");
    let n = 4;
    let cfg = OcptConfig::basic_only();
    let mut procs: Vec<OcptProcess> = (0..4).map(|i| OcptProcess::new(p(i), n, cfg)).collect();
    let mut out = Vec::new();
    let pl = AppPayload { id: 0, len: 256 };

    let narrate = |s: &str| println!("  {s}");

    // P0 initiates.
    procs[0].initiate_checkpoint(&mut out);
    narrate("P0 takes CT(0,1) and becomes tentative — the initiation");
    out.clear();

    let relay =
        |from: usize, to: usize, msg: u64, procs: &mut Vec<OcptProcess>, out: &mut Vec<Action>| {
            let pb = procs[from].on_app_send(p(to as u32), MsgId(msg), pl);
            procs[to].on_app_receive(p(from as u32), MsgId(msg), pl, &pb, out).unwrap();
        };

    relay(0, 1, 2, &mut procs, &mut out);
    narrate(&format!(
        "M2: P0→P1; P1 now {} with tentSet {:?}",
        procs[1].status(),
        procs[1].tent_set()
    ));
    out.clear();
    relay(1, 2, 4, &mut procs, &mut out);
    narrate(&format!(
        "M4: P1→P2; P2 now {} with tentSet {:?}",
        procs[2].status(),
        procs[2].tent_set()
    ));
    out.clear();
    relay(1, 3, 3, &mut procs, &mut out);
    narrate(&format!(
        "M3: P1→P3; P3 now {} with tentSet {:?}",
        procs[3].status(),
        procs[3].tent_set()
    ));
    out.clear();

    // M6 sent by P2 (delivered late, per the figure's arbitrary delays).
    let pb6 = procs[2].on_app_send(p(3), MsgId(6), pl);
    narrate("M6: P2→P3 sent (in flight; channels need not be FIFO)");

    relay(3, 2, 5, &mut procs, &mut out);
    let fin = out.iter().find_map(|a| match a {
        Action::Finalize { csn, log, .. } => Some((csn, log.clone())),
        _ => None,
    });
    let (_, log) = fin.expect("P2 finalizes");
    narrate(&format!(
        "M5: P3→P2; P2 learns allPSet and FINALIZES C(2,1) with log {{{}}} — the paper's {{M5, M6}}",
        log.entries().iter().map(|e| format!("M{}", e.msg_id.0)).collect::<Vec<_>>().join(", ")
    ));
    out.clear();

    relay(2, 1, 7, &mut procs, &mut out);
    narrate("M7: P2(normal)→P1; P1 finalizes, M7 excluded from its log");
    out.clear();
    relay(1, 3, 8, &mut procs, &mut out);
    narrate("M8: P1(normal)→P3; P3 finalizes, M8 excluded");
    out.clear();
    relay(3, 0, 9, &mut procs, &mut out);
    narrate("M9: P3(normal)→P0; P0 finalizes, M9 excluded");
    out.clear();

    // Late M6 arrives after P3 finalized: sub-case (4a), no action.
    procs[3].on_app_receive(p(2), MsgId(6), pl, &pb6, &mut out).unwrap();
    narrate("M6 finally arrives at P3 — already finalized, no action (4a)");

    for (i, q) in procs.iter().enumerate() {
        assert_eq!(q.csn(), 1);
        assert_eq!(q.status(), Status::Normal);
        println!("  P{i}: csn={} status={}", q.csn(), q.status());
    }
    println!("  → S_1 = {{C(0,1), C(1,1), C(2,1), C(3,1)}} collected ✓\n");
}

/// Paper Figure 5: the convergence problem and the control-message fix,
/// this time on the full simulator with sparse traffic.
fn figure5() {
    println!("=== Figure 5: convergence via control messages (simulated) ===\n");

    // Sparse traffic: without control messages the round cannot finalize.
    let mut cfg = RunConfig::new(4, 9);
    cfg.workload = WorkloadSpec::uniform_mesh(SimDuration::from_millis(400));
    cfg.checkpoint_interval = SimDuration::from_millis(300);
    cfg.workload_duration = SimDuration::from_millis(900);
    cfg.state_bytes = 64 * 1024;
    cfg.trace = true;

    let basic = run(&Algo::ocpt_basic(), cfg.clone());
    println!(
        "basic algorithm (no control messages): rounds completed = {} (convergence problem!)",
        basic.complete_rounds
    );

    let full = run_checked(&Algo::ocpt(), cfg);
    println!(
        "generalized algorithm: rounds completed = {} using {} control messages (BGN {}, REQ {}, END {})",
        full.complete_rounds,
        full.ctrl_messages,
        full.counters.get("ctrl.bgn_sent"),
        full.counters.get("ctrl.req_sent"),
        full.counters.get("ctrl.end_sent"),
    );
    assert!(full.complete_rounds > basic.complete_rounds);

    println!("\nspace-time diagram of the generalized run:");
    println!("{}", full.trace.ascii_diagram(4));
}
