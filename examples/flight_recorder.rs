//! Flight recorder: record a run's full event history, derive causal
//! spans from it, and round-trip the versioned JSONL trace format.
//!
//! ```sh
//! cargo run --example flight_recorder
//! ```
//!
//! The same artifacts come out of every experiment binary
//! (`exp_* --trace-out DIR`) and out of `ocpt run --trace-json FILE`;
//! `ocpt trace summary|diff|grep` analyzes them from the command line.

use ocpt::prelude::*;
use ocpt::telemetry;

fn main() {
    // A small traced run: 4 processes, ~1.2 s of virtual time, one crash.
    let mut cfg = RunConfig::new(4, 42);
    cfg.workload = WorkloadSpec::uniform_mesh(SimDuration::from_millis(5));
    cfg.checkpoint_interval = SimDuration::from_millis(300);
    cfg.workload_duration = SimDuration::from_millis(1_200);
    cfg.state_bytes = 256 * 1024;
    cfg.stop_on_crash = false;
    cfg.faults = FaultPlan::single(
        ProcessId(2),
        SimTime::ZERO + SimDuration::from_millis(700),
        SimDuration::from_millis(40),
    );
    cfg.trace = true;

    let result = run_checked(&Algo::ocpt(), cfg);

    // 1. Export: the versioned, byte-deterministic JSONL trace.
    let jsonl = result.trace_jsonl();
    println!("trace is {} bytes of JSONL; first two lines:", jsonl.len());
    for line in jsonl.lines().take(2) {
        println!("  {line}");
    }

    // 2. Round-trip: parse it back (this validates the schema) …
    let file = telemetry::parse_jsonl(&jsonl).expect("own trace is schema-valid");
    println!("\nparsed {} events back from the trace", file.recs.len());

    // … and the whole-trace summary the CLI prints.
    println!("\n{}", telemetry::summary(&file));

    // 3. Spans: the causal intervals behind the summary.
    let spans = telemetry::derive_spans(&file.recs);
    for s in spans.iter().filter(|s| s.kind == telemetry::SpanKind::Wave) {
        println!(
            "control wave of round {} converged in {:.3} ms",
            s.seq.expect("waves are round-scoped"),
            s.secs() * 1e3
        );
    }
    for s in spans.iter().filter(|s| s.kind == telemetry::SpanKind::Outage) {
        println!(
            "P{} was down for {:.3} ms{}",
            s.pid.expect("outages are per-process"),
            s.secs() * 1e3,
            if s.closed { "" } else { " (never recovered)" }
        );
    }

    // 4. Grep: the crash episode, as the CLI's `trace grep` would list it.
    let filter = telemetry::GrepFilter {
        code_prefix: Some("fault.".into()),
        ..telemetry::GrepFilter::default()
    };
    println!("\nfault events:");
    for rec in telemetry::grep(&file, &filter) {
        println!("  {}", telemetry::render_rec(rec));
    }

    // 5. Determinism: re-running the identical configuration reproduces
    //    the trace byte for byte — the property `trace diff` leans on.
    let mut cfg2 = RunConfig::new(4, 42);
    cfg2.workload = WorkloadSpec::uniform_mesh(SimDuration::from_millis(5));
    cfg2.checkpoint_interval = SimDuration::from_millis(300);
    cfg2.workload_duration = SimDuration::from_millis(1_200);
    cfg2.state_bytes = 256 * 1024;
    cfg2.stop_on_crash = false;
    cfg2.faults = FaultPlan::single(
        ProcessId(2),
        SimTime::ZERO + SimDuration::from_millis(700),
        SimDuration::from_millis(40),
    );
    cfg2.trace = true;
    let replay = run_checked(&Algo::ocpt(), cfg2);
    assert_eq!(jsonl, replay.trace_jsonl(), "same (config, seed) ⇒ same bytes");
    println!("\nreplay with the same seed reproduced the trace byte for byte ✓");
}
