//! End-to-end recovery: crash a process mid-run, roll the system back,
//! and check the paper's guarantees — bounded rollback to a consistent
//! `S_k`, byte-exact state restoration from `CT + logSet`, and the domino
//! effect when coordination is absent.

use ocpt::harness::{coordinated_rollback, domino_rollback, verify_restored_states};
use ocpt::prelude::*;
use proptest::prelude::*;

fn crash_cfg(n: usize, seed: u64, crash_ms: u64) -> RunConfig {
    let mut cfg = RunConfig::new(n, seed);
    cfg.workload = WorkloadSpec::uniform_mesh(SimDuration::from_millis(3));
    cfg.checkpoint_interval = SimDuration::from_millis(200);
    cfg.workload_duration = SimDuration::from_millis(crash_ms + 500);
    cfg.state_bytes = 128 * 1024;
    cfg.faults = FaultPlan::single(
        ProcessId((n / 2) as u32),
        SimTime::from_millis(crash_ms),
        SimDuration::from_millis(10),
    );
    cfg.stop_on_crash = true;
    cfg
}

#[test]
fn ocpt_rollback_is_bounded_and_restorable() {
    let r = run(&Algo::ocpt(), crash_cfg(6, 808, 1_500));
    assert!(r.protocol_error.is_none());
    assert!(r.crash.is_some());
    let obs = r.observer.as_ref().unwrap();
    let line = r.recovery_line;
    assert!(line >= 2, "several rounds should be durable before the crash (line={line})");
    // Consistency of the rollback target.
    assert!(obs.judge(line).unwrap().is_consistent());
    // Byte-exact restoration of every process on the line.
    assert_eq!(verify_restored_states(&r, line).unwrap(), 6);
    // Bounded rollback: nobody falls to the initial state, no cascade.
    let roll = coordinated_rollback(obs, line);
    assert_eq!(roll.cascade_rounds, 1);
    assert_eq!(roll.rolled_to_initial, 0);
}

#[test]
fn uncoordinated_shows_domino_and_ocpt_does_not() {
    let ocpt = run(&Algo::ocpt(), crash_cfg(6, 4242, 1_500));
    let unco = run(&Algo::Uncoordinated, crash_cfg(6, 4242, 1_500));
    let obs_o = ocpt.observer.as_ref().unwrap();
    let obs_u = unco.observer.as_ref().unwrap();
    let roll_o = coordinated_rollback(obs_o, ocpt.recovery_line);
    let roll_u = domino_rollback(obs_u, ProcessId(3));
    // The domino effect: cascading rollback loses strictly more work.
    assert!(
        roll_u.events_lost > roll_o.events_lost,
        "uncoordinated lost {} vs ocpt {}",
        roll_u.events_lost,
        roll_o.events_lost
    );
    assert!(roll_u.cascade_rounds > 1, "expected cascading rollback");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Whatever the crash time and seed: the recovery line is consistent,
    /// restorable, and rollback never cascades for OCPT.
    #[test]
    fn ocpt_recovery_invariants(
        seed in any::<u64>(),
        crash_ms in 300u64..2_000,
        n in 3usize..8,
    ) {
        let r = run(&Algo::ocpt(), crash_cfg(n, seed, crash_ms));
        prop_assert!(r.protocol_error.is_none());
        let obs = r.observer.as_ref().unwrap();
        let line = r.recovery_line;
        if line > 0 {
            prop_assert!(obs.judge(line).unwrap().is_consistent());
            verify_restored_states(&r, line).map_err(TestCaseError::fail)?;
            let roll = coordinated_rollback(obs, line);
            prop_assert_eq!(roll.cascade_rounds, 1);
        }
    }
}

/// The crashed process's volatile state (unfinalized tentative checkpoint
/// and in-memory log) is genuinely lost: nothing for rounds past the
/// durable line survives for that process.
#[test]
fn volatile_state_is_lost_at_crash() {
    let r = run(&Algo::ocpt(), crash_cfg(4, 99, 700));
    let victim = ProcessId(2);
    let line = r.recovery_line;
    // No durable checkpoint of the victim beyond what completed + flushed.
    let beyond = (line + 1..line + 10).filter(|csn| r.store.get(victim, *csn).is_some()).count();
    // (Writes in flight at crash time may still land — the server is
    // remote — but nothing beyond what was already submitted.)
    assert!(beyond <= 1, "unexpected durable checkpoints beyond the line: {beyond}");
}

/// Crash early enough that nothing is durable: recovery degenerates to
/// the initial state, still without cascade for OCPT.
#[test]
fn crash_before_first_durable_round() {
    let r = run(&Algo::ocpt(), crash_cfg(4, 3, 30));
    assert!(r.protocol_error.is_none());
    assert_eq!(r.recovery_line, 0);
    let obs = r.observer.as_ref().unwrap();
    let roll = coordinated_rollback(obs, 0);
    // Rolling to S_0 = initial states: everything is lost, but by
    // *construction*, not by cascade.
    assert_eq!(roll.cascade_rounds, 1);
}
