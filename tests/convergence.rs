//! The paper's Theorem 1 as executable tests: the *generalized* algorithm
//! (with the CK_BGN / CK_REQ / CK_END layer) always converges — every
//! initiated round finalizes everywhere — while the *basic* algorithm of
//! Fig. 3 demonstrably stalls when application traffic is too sparse (the
//! §3.5.1 convergence problem).

use ocpt::prelude::*;
use proptest::prelude::*;

fn sparse_cfg(n: usize, seed: u64, gap_ms: u64) -> RunConfig {
    let mut cfg = RunConfig::new(n, seed);
    cfg.workload = WorkloadSpec::uniform_mesh(SimDuration::from_millis(gap_ms));
    cfg.checkpoint_interval = SimDuration::from_millis(200);
    cfg.workload_duration = SimDuration::from_millis(800);
    cfg.state_bytes = 64 * 1024;
    cfg
}

/// The basic algorithm (no control messages) fails to converge under
/// sparse traffic — the motivating problem of §3.5.1.
#[test]
fn basic_algorithm_stalls_without_traffic() {
    // Nearly silent workload: one message every 300 ms per process.
    let r = run(&Algo::ocpt_basic(), sparse_cfg(4, 5, 300));
    assert!(r.protocol_error.is_none());
    // Rounds were initiated (tentative checkpoints taken)...
    assert!(r.counters.get("ckpt.tentative") > 0);
    // ...but not all could be finalized.
    assert!(
        r.counters.get("ckpt.finalized") < r.counters.get("ckpt.tentative"),
        "basic algorithm unexpectedly converged: {} finalized of {}",
        r.counters.get("ckpt.finalized"),
        r.counters.get("ckpt.tentative"),
    );
}

/// With dense traffic the basic algorithm converges with zero control
/// messages — the happy path the paper optimizes for.
#[test]
fn basic_algorithm_converges_under_dense_traffic() {
    let r = run_checked(&Algo::ocpt_basic(), sparse_cfg(4, 6, 2));
    assert!(r.complete_rounds >= 1, "rounds = {}", r.complete_rounds);
    assert_eq!(r.ctrl_messages, 0, "basic algorithm must send no control messages");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Theorem 1: the generalized algorithm converges regardless of how
    /// sparse the traffic is — every process finalizes every round it took
    /// a tentative checkpoint for.
    #[test]
    fn generalized_algorithm_always_converges(
        n in 2usize..9,
        seed in any::<u64>(),
        gap_ms in 1u64..600,
        naive in any::<bool>(),
    ) {
        let algo = if naive { Algo::ocpt_naive() } else { Algo::ocpt() };
        let r = run(&algo, sparse_cfg(n, seed, gap_ms));
        prop_assert!(r.protocol_error.is_none(), "{:?}", r.protocol_error);
        prop_assert_eq!(
            r.counters.get("ckpt.finalized"),
            r.counters.get("ckpt.tentative"),
            "tentative checkpoints left unfinalized (Theorem 1 violated)"
        );
        r.verify_consistency().map_err(TestCaseError::fail)?;
    }
}

/// The CK_BGN suppression (§3.5.1 case 1) really reduces CK_BGN traffic
/// versus the naive layer when knowledge spreads partially before the
/// timers fire: all processes take the tentative checkpoint together
/// (aligned initiation), a little traffic tells higher-id processes that
/// lower-id ones are tentative, and their CK_BGNs are suppressed.
#[test]
fn suppression_reduces_ck_bgn() {
    let mk = |algo: &Algo| {
        let mut cfg = sparse_cfg(8, 11, 60);
        cfg.stagger_initiation = false; // concurrent initiation
        run(algo, cfg)
    };
    let naive = mk(&Algo::ocpt_naive());
    let opt = mk(&Algo::ocpt());
    assert!(naive.protocol_error.is_none() && opt.protocol_error.is_none());
    let naive_bgn = naive.counters.get("ctrl.bgn_sent");
    let opt_bgn = opt.counters.get("ctrl.bgn_sent");
    assert!(
        opt_bgn <= naive_bgn,
        "suppression should not increase CK_BGN ({opt_bgn} vs {naive_bgn})"
    );
    assert!(opt.counters.get("ctrl.bgn_suppressed") > 0, "nothing was suppressed");
}

/// The CK_REQ skip (§3.5.1 case 2) never makes the ring longer than the
/// naive next-neighbour walk.
#[test]
fn req_skipping_shortens_the_ring() {
    let naive = run(&Algo::ocpt_naive(), sparse_cfg(8, 13, 150));
    let opt = run(&Algo::ocpt(), sparse_cfg(8, 13, 150));
    let per_round =
        |r: &RunResult| r.counters.get("ctrl.req_sent") as f64 / r.complete_rounds.max(1) as f64;
    assert!(
        per_round(&opt) <= per_round(&naive) + 1e-9,
        "skip optimization lengthened the ring: {} vs {}",
        per_round(&opt),
        per_round(&naive)
    );
}

/// Convergence latency is bounded by the traffic when dense and by the
/// timer + ring when sparse: sparse rounds take at least the timeout.
#[test]
fn sparse_round_latency_dominated_by_timer() {
    let mut cfg = sparse_cfg(4, 17, 500); // quiet
    cfg.checkpoint_interval = SimDuration::from_millis(400);
    cfg.workload_duration = SimDuration::from_millis(1600);
    let r = run_checked(&Algo::ocpt(), cfg);
    if r.complete_rounds > 0 && r.counters.get("timer.expired") > 0 {
        // Default convergence timeout is 250 ms: rounds that needed the
        // timer cannot have finished faster than that.
        assert!(r.ckpt_latency.max() >= 0.25, "latency max {} < timeout", r.ckpt_latency.max());
    }
}

/// A round initiated concurrently by several processes still collapses to
/// one sequence number (multi-initiator support, §3.2 "two or more
/// processes can concurrently initiate").
#[test]
fn concurrent_initiations_collapse_into_one_round() {
    // Aligned initiation ticks: force all processes to initiate at once.
    let mut cfg = sparse_cfg(6, 23, 3);
    cfg.stagger_initiation = false;
    let r = run_checked(&Algo::ocpt(), cfg);
    // Every process initiated independently, yet rounds advanced in
    // lock-step: finalized count equals tentative count and the max csn
    // equals the number of complete rounds.
    assert_eq!(r.counters.get("ckpt.finalized"), r.counters.get("ckpt.tentative"));
    assert!(r.complete_rounds >= 1);
}
