//! The protocol on real OS threads: checkpoint rounds under live
//! concurrency, wire-codec round trips on every hop, and Theorem 2 checked
//! against genuine interleavings (no virtual clock, no deterministic
//! scheduler to hide races).

use std::time::Duration;

use ocpt::prelude::*;
use ocpt::runtime::Cluster;

fn cfg() -> OcptConfig {
    OcptConfig {
        convergence_timeout: SimDuration::from_millis(40),
        state_bytes: 16 * 1024,
        ..OcptConfig::default()
    }
}

#[test]
fn one_round_with_traffic() {
    let cluster = Cluster::start(3, cfg());
    for i in 0..3u32 {
        cluster.send_app(ProcessId(i), ProcessId((i + 1) % 3), 128);
    }
    cluster.checkpoint(ProcessId(0));
    for i in 0..3u32 {
        cluster.send_app(ProcessId(i), ProcessId((i + 2) % 3), 128);
    }
    cluster.wait_for_round(1, Duration::from_secs(10)).expect("round 1");
    assert_eq!(cluster.store().recovery_line(3), 1);
    let obs = cluster.observer().lock();
    assert!(obs.judge(1).expect("complete").is_consistent());
    drop(obs);
    cluster.shutdown();
}

#[test]
fn convergence_timer_rescues_silent_round() {
    // No application traffic at all after initiation: only the control
    // layer can converge the round (paper Theorem 1, for real this time).
    let cluster = Cluster::start(4, cfg());
    cluster.checkpoint(ProcessId(2));
    cluster.wait_for_round(1, Duration::from_secs(10)).expect("silent round");
    assert_eq!(cluster.store().recovery_line(4), 1);
    cluster.shutdown();
}

#[test]
fn several_rounds_alternating_initiators() {
    let n = 4usize;
    let cluster = Cluster::start(n, cfg());
    for round in 1..=4u64 {
        for i in 0..n as u32 {
            for j in 0..n as u32 {
                if i != j {
                    cluster.send_app(ProcessId(i), ProcessId(j), 64);
                }
            }
        }
        cluster.checkpoint(ProcessId((round % n as u64) as u32));
        for i in 0..n as u32 {
            cluster.send_app(ProcessId(i), ProcessId((i + 1) % n as u32), 64);
        }
        cluster.wait_for_round(round, Duration::from_secs(10)).unwrap();
    }
    assert_eq!(cluster.store().recovery_line(n), 4);
    // Every completed round consistent under the real interleaving.
    let obs = cluster.observer().lock();
    let complete = obs.complete_csns();
    assert!(complete.len() >= 4);
    for csn in complete {
        let rep = obs.judge(csn).unwrap();
        assert!(rep.is_consistent(), "S_{csn} inconsistent on threads");
        assert_eq!(obs.vclock_consistent(csn), Some(true));
    }
    drop(obs);
    cluster.shutdown();
}

#[test]
fn durable_blobs_decode_and_replay() {
    let cluster = Cluster::start(3, cfg());
    for i in 0..3u32 {
        cluster.send_app(ProcessId(i), ProcessId((i + 1) % 3), 256);
    }
    cluster.checkpoint(ProcessId(1));
    for i in 0..3u32 {
        cluster.send_app(ProcessId(i), ProcessId((i + 2) % 3), 256);
    }
    cluster.wait_for_round(1, Duration::from_secs(10)).unwrap();
    for i in 0..3u32 {
        let d = cluster.store().get(ProcessId(i), 1).expect("durable");
        let plan =
            ocpt::protocol::plan_recovery(1, d.state, d.log).expect("blobs decode and replay");
        assert_eq!(plan.csn, 1);
    }
    cluster.shutdown();
}

#[test]
fn stress_many_messages_many_rounds() {
    let n = 6usize;
    let cluster = Cluster::start(n, cfg());
    for round in 1..=3u64 {
        for burst in 0..20u32 {
            for i in 0..n as u32 {
                cluster.send_app(ProcessId(i), ProcessId((i + 1 + burst % 3) % n as u32), 200);
            }
        }
        cluster.checkpoint(ProcessId(0));
        for i in 0..n as u32 {
            cluster.send_app(ProcessId(i), ProcessId((i + 1) % n as u32), 64);
        }
        cluster.wait_for_round(round, Duration::from_secs(15)).unwrap();
    }
    let obs = cluster.observer().lock();
    for csn in obs.complete_csns() {
        assert!(obs.judge(csn).unwrap().is_consistent());
    }
    drop(obs);
    cluster.shutdown();
}
