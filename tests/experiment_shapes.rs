//! Regression tests for the experiment *shapes* — the reproduction
//! targets recorded in `EXPERIMENTS.md`. Absolute numbers depend on the
//! substrate parameters; these tests pin the qualitative claims so a code
//! change that flips a conclusion fails CI.

use ocpt::prelude::*;

fn base(n: usize, seed: u64) -> RunConfig {
    let mut cfg = RunConfig::new(n, seed);
    cfg.workload = WorkloadSpec::uniform_mesh(SimDuration::from_millis(4));
    cfg.checkpoint_interval = SimDuration::from_millis(400);
    cfg.workload_duration = SimDuration::from_secs(2);
    cfg.state_bytes = 512 * 1024;
    cfg
}

/// E1: OCPT's peak concurrent writers stay far below the synchronous
/// baselines', and its storage stall is a small fraction of theirs.
#[test]
fn e1_ocpt_contends_less_than_synchronous_baselines() {
    let n = 8;
    let ocpt = run_checked(&Algo::ocpt(), base(n, 1));
    let cl = run_checked(&Algo::ChandyLamport, base(n, 1));
    let kt = run_checked(&Algo::KooToueg, base(n, 1));
    assert!(
        ocpt.storage.peak_writers * 2 <= cl.storage.peak_writers,
        "ocpt peak {} vs chandy-lamport {}",
        ocpt.storage.peak_writers,
        cl.storage.peak_writers
    );
    assert!(
        ocpt.storage.peak_writers * 2 <= kt.storage.peak_writers,
        "ocpt peak {} vs koo-toueg {}",
        ocpt.storage.peak_writers,
        kt.storage.peak_writers
    );
    assert!(ocpt.storage.total_stall < cl.storage.total_stall);
    assert!(ocpt.storage.total_stall < kt.storage.total_stall);
}

/// E2: OCPT never blocks the application; Koo–Toueg does.
#[test]
fn e2_ocpt_never_blocks_koo_toueg_does() {
    let ocpt = run_checked(&Algo::ocpt(), base(8, 2));
    let kt = run_checked(&Algo::KooToueg, base(8, 2));
    assert_eq!(ocpt.blocked_time, SimDuration::ZERO);
    assert!(kt.blocked_time > SimDuration::ZERO, "koo-toueg should block sends");
}

/// E3: under dense traffic the naive control layer goes fully quiet — no
/// CK_BGN, no CK_REQ, no CK_END ("control messages only when necessary").
#[test]
fn e3_control_messages_vanish_under_dense_traffic() {
    let mut cfg = base(6, 3);
    cfg.workload = WorkloadSpec::uniform_mesh(SimDuration::from_millis(1));
    let r = run_checked(&Algo::ocpt_naive(), cfg);
    assert!(r.complete_rounds >= 2);
    assert_eq!(r.ctrl_messages, 0, "dense traffic should need no control messages");
}

/// E3 flip side: under sparse traffic control messages appear — and the
/// round still always completes.
#[test]
fn e3_control_messages_appear_under_sparse_traffic() {
    let mut cfg = base(6, 4);
    cfg.workload = WorkloadSpec::uniform_mesh(SimDuration::from_millis(300));
    let r = run_checked(&Algo::ocpt(), cfg);
    assert!(r.ctrl_messages > 0);
    assert_eq!(r.counters.get("ckpt.finalized"), r.counters.get("ckpt.tentative"));
}

/// E5: selective logging persists far fewer bytes than logging everything.
#[test]
fn e5_selective_logging_is_a_small_fraction() {
    let r = run_checked(&Algo::ocpt(), base(8, 5));
    let logged = r.counters.get("log.flushed_bytes");
    let everything = 2 * (r.app_payload_bytes + r.app_messages * ocpt_core::log::ENTRY_META_BYTES);
    assert!(
        logged * 3 < everything,
        "selective logging ({logged}) should be well under full logging ({everything})"
    );
    assert!(logged > 0, "some messages must fall inside checkpoint windows");
}

/// E6: measured piggyback bytes never exceed the dense ⌈N/8⌉ + 9 formula
/// (the adaptive encoding picks whichever representation is smallest). At
/// tiny N the dense bitmap always wins, so the match is exact there.
#[test]
fn e6_piggyback_bounded_by_dense_formula() {
    for n in [4usize, 16, 64] {
        let r = run_checked(&Algo::ocpt(), base(n, 6));
        let per_msg = r.piggyback_bytes as f64 / r.app_messages as f64;
        let dense = ocpt::protocol::Piggyback::dense_wire_bytes_for(n) as f64;
        assert!(per_msg <= dense + 1e-9, "n={n}: measured {per_msg} vs dense bound {dense}");
        if n <= 16 {
            // 1-byte tag + ≤2-byte bitmap beats any sparse list here.
            assert!((per_msg - dense).abs() < 1e-9, "n={n}: {per_msg} != {dense}");
        } else {
            // Sparse-era messages (empty or few-member tentSets between
            // rounds) must drag the average strictly below the dense
            // formula — the whole point of the adaptive encoding.
            assert!(per_msg < dense - 1e-9, "n={n}: adaptive encoding never beat dense");
        }
    }
}

/// E8: OCPT takes zero forced checkpoints before processing; CIC takes
/// plenty under skewed checkpoint phases.
#[test]
fn e8_no_forced_checkpoints_for_ocpt() {
    let ocpt = run_checked(&Algo::ocpt(), base(8, 7));
    let cic = run_checked(&Algo::Cic, base(8, 7));
    assert_eq!(ocpt.counters.get("ckpt.forced_before_processing"), 0);
    assert!(
        cic.counters.get("ckpt.forced_before_processing") > 0,
        "CIC should force checkpoints before processing under phase skew"
    );
    assert_eq!(ocpt.forced_delay, SimDuration::ZERO);
    assert!(cic.forced_delay > SimDuration::ZERO);
}

/// A2: phased write placement eliminates the contention that immediate
/// placement suffers, at identical checkpoint cadence.
#[test]
fn a2_phased_writes_beat_immediate() {
    let immediate = OcptConfig {
        flush_policy: FlushPolicy::Eager,
        finalize_write: WritePolicy::Immediate,
        ..OcptConfig::default()
    };
    let phased = OcptConfig::default();
    let ri = run_checked(&Algo::Ocpt(immediate), base(8, 8));
    let rp = run_checked(&Algo::Ocpt(phased), base(8, 8));
    assert_eq!(ri.complete_rounds, rp.complete_rounds, "same cadence required");
    assert!(
        rp.storage.total_stall < ri.storage.total_stall,
        "phased {} should stall less than immediate {}",
        rp.storage.total_stall,
        ri.storage.total_stall
    );
    assert!(rp.storage.peak_writers <= ri.storage.peak_writers);
}

/// Piggybacks are the only per-message overhead: OCPT adds no checkpoint
/// latency to message *processing* (its case analysis runs after).
#[test]
fn staggered_pays_tokens_ocpt_pays_piggybacks() {
    let stag = run_checked(&Algo::Staggered, base(8, 9));
    let ocpt = run_checked(&Algo::ocpt(), base(8, 9));
    // Staggered has zero piggyback but per-round marker+token traffic.
    assert_eq!(stag.piggyback_bytes, 0);
    assert!(stag.ctrl_messages > 0);
    // OCPT pays piggybacks instead.
    assert!(ocpt.piggyback_bytes > 0);
}
