//! Reproducibility: a run is a pure function of its configuration. Equal
//! seeds ⇒ bit-identical metrics; different seeds ⇒ different executions.
//! This is what makes the parameter sweeps in the experiments meaningful.

use ocpt::prelude::*;

fn cfg(seed: u64) -> RunConfig {
    let mut cfg = RunConfig::new(6, seed);
    cfg.workload = WorkloadSpec::uniform_mesh(SimDuration::from_millis(4));
    cfg.checkpoint_interval = SimDuration::from_millis(150);
    cfg.workload_duration = SimDuration::from_millis(700);
    cfg.state_bytes = 128 * 1024;
    cfg
}

fn fingerprint(r: &RunResult) -> (u64, u64, u64, u64, u64, i64, Vec<u64>) {
    (
        r.app_messages,
        r.ctrl_messages,
        r.complete_rounds,
        r.recovery_line,
        r.makespan.as_nanos(),
        r.storage.peak_writers,
        r.app_final.iter().map(|s| s.digest).collect(),
    )
}

#[test]
fn identical_seeds_identical_runs() {
    for algo in Algo::comparison_set() {
        let a = run(&algo, cfg(12345));
        let b = run(&algo, cfg(12345));
        assert_eq!(fingerprint(&a), fingerprint(&b), "{} not deterministic", a.algo);
    }
}

#[test]
fn different_seeds_different_runs() {
    let a = run(&Algo::ocpt(), cfg(1));
    let b = run(&Algo::ocpt(), cfg(2));
    // The digests fold every event: equal digests across seeds would mean
    // the seed changed nothing at all.
    assert_ne!(
        fingerprint(&a).6,
        fingerprint(&b).6,
        "different seeds produced identical executions"
    );
}

#[test]
fn counters_are_reproducible_too() {
    let a = run(&Algo::ocpt(), cfg(777));
    let b = run(&Algo::ocpt(), cfg(777));
    let ca: Vec<(&str, u64)> = a.counters.iter().collect();
    let cb: Vec<(&str, u64)> = b.counters.iter().collect();
    assert_eq!(ca, cb);
}

#[test]
fn trace_does_not_perturb_the_run() {
    // Enabling instrumentation must not change the execution (separate RNG
    // streams per concern).
    let mut with_trace = cfg(99);
    with_trace.trace = true;
    let a = run(&Algo::ocpt(), with_trace);
    let b = run(&Algo::ocpt(), cfg(99));
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert!(!a.trace.events().is_empty());
    assert!(b.trace.events().is_empty());
}

#[test]
fn observer_reports_are_hash_order_free() {
    // Guards the ordered-iteration conversions (simlint rule D2): the
    // observer's message table and the runner's round-latency maps are
    // iterated while building reports, so their walk order must be a
    // function of the run alone — never of `RandomState`. With ordered
    // maps these comparisons are exact; with hash maps they would differ
    // across processes.
    let a = run(&Algo::ocpt(), cfg(4242));
    let b = run(&Algo::ocpt(), cfg(4242));
    let oa = a.observer.as_ref().expect("observer enabled by default");
    let ob = b.observer.as_ref().expect("observer enabled by default");
    // Identical message tables, and sorted by id as documented — not
    // merely equal between the two runs.
    assert_eq!(oa.messages(), ob.messages());
    let ids: Vec<_> = oa.messages().iter().map(|(id, _, _)| *id).collect();
    assert!(ids.windows(2).all(|w| w[0] < w[1]), "messages() not id-sorted");
    // Every complete global checkpoint judges identically, with orphan and
    // in-transit lists in identical (id) order.
    assert!(!oa.complete_csns().is_empty());
    for csn in oa.complete_csns() {
        assert_eq!(oa.judge(csn), ob.judge(csn));
    }
    // Round-latency aggregation folds floats in map iteration order;
    // bit-for-bit equality of the fold pins that order.
    assert_eq!(a.ckpt_latency.mean().to_bits(), b.ckpt_latency.mean().to_bits());
    assert_eq!(a.ckpt_latency.stddev().to_bits(), b.ckpt_latency.stddev().to_bits());
    // Ground-truth cut states ride in an ordered map too.
    assert_eq!(a.cut_states, b.cut_states);
}

#[test]
fn observer_does_not_perturb_the_run() {
    let mut without = cfg(55);
    without.observe = false;
    let a = run(&Algo::ocpt(), without);
    let b = run(&Algo::ocpt(), cfg(55));
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert!(a.observer.is_none());
    assert!(b.observer.is_some());
}
