//! The hierarchical control wave is an *optimization*, not a protocol
//! change: a grouped run and a flat run of the same workload must collect
//! the same consistent global checkpoints and converge to the same
//! recovery line. The flat ring doubles as the differential oracle here.

use ocpt::prelude::*;

fn sparse_cfg(n: usize, seed: u64, gap_ms: u64) -> RunConfig {
    let mut cfg = RunConfig::new(n, seed);
    cfg.workload = WorkloadSpec::uniform_mesh(SimDuration::from_millis(gap_ms));
    cfg.checkpoint_interval = SimDuration::from_millis(200);
    cfg.workload_duration = SimDuration::from_millis(800);
    cfg.state_bytes = 64 * 1024;
    cfg
}

fn with_topology(t: ControlTopology) -> Algo {
    Algo::Ocpt(OcptConfig { control_topology: t, ..OcptConfig::default() })
}

/// Flat vs Grouped{4} at N = 12: same recovery line, same completed
/// rounds, both fully consistent (run_checked verifies the oracle).
#[test]
fn grouped_and_flat_reach_same_recovery_line() {
    for seed in [31u64, 32, 33] {
        // Sparse enough that the control wave actually runs.
        let flat = run_checked(&with_topology(ControlTopology::Flat), sparse_cfg(12, seed, 120));
        let hier = run_checked(
            &with_topology(ControlTopology::Grouped { group_size: 4 }),
            sparse_cfg(12, seed, 120),
        );
        assert_eq!(hier.recovery_line, flat.recovery_line, "seed {seed}");
        assert_eq!(hier.complete_rounds, flat.complete_rounds, "seed {seed}");
        assert_eq!(
            hier.counters.get("ckpt.finalized"),
            flat.counters.get("ckpt.finalized"),
            "seed {seed}"
        );
    }
}

/// The grouped wave actually runs through its two tiers under sparse
/// traffic: group rings complete and report to P0.
#[test]
fn grouped_wave_reports_group_completion() {
    let r = run_checked(
        &with_topology(ControlTopology::Grouped { group_size: 4 }),
        sparse_cfg(12, 77, 150),
    );
    assert!(r.complete_rounds >= 1);
    assert!(
        r.counters.get("ctrl.grp_done_sent") > 0,
        "two-tier wave should have produced CK_GRP_DONE reports"
    );
}

/// Below the Auto threshold the default config runs the paper-exact flat
/// ring: a run under `Auto` is byte-identical to an explicit `Flat` run.
#[test]
fn auto_below_threshold_is_exactly_flat() {
    let auto = run_checked(
        &with_topology(ControlTopology::Auto { threshold: 512 }),
        sparse_cfg(12, 9, 120),
    );
    let flat = run_checked(&with_topology(ControlTopology::Flat), sparse_cfg(12, 9, 120));
    assert_eq!(auto.app_messages, flat.app_messages);
    assert_eq!(auto.piggyback_bytes, flat.piggyback_bytes);
    assert_eq!(auto.ctrl_messages, flat.ctrl_messages);
    assert_eq!(auto.ctrl_bytes, flat.ctrl_bytes);
    assert_eq!(auto.makespan, flat.makespan);
    assert_eq!(auto.recovery_line, flat.recovery_line);
}

/// Above the threshold Auto shards: same consistency, fewer control
/// messages through any single process. N = 30 with threshold 16 resolves
/// to ⌈√30⌉ = 6-sized groups.
#[test]
fn auto_above_threshold_shards_and_still_converges() {
    let r = run_checked(
        &with_topology(ControlTopology::Auto { threshold: 16 }),
        sparse_cfg(30, 14, 150),
    );
    assert!(r.complete_rounds >= 1);
    assert_eq!(r.counters.get("ckpt.tentative"), r.counters.get("ckpt.finalized"));
}
