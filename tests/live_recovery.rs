//! Live recovery: the system crashes, rolls back to the durable recovery
//! line `S_k`, re-injects the in-transit messages preserved by selective
//! logging, resumes the workload — and keeps collecting *consistent*
//! global checkpoints afterwards. This exercises the paper's purpose
//! end-to-end: checkpoints exist to be recovered from.

use ocpt::prelude::*;
use proptest::prelude::*;

fn recovery_cfg(n: usize, seed: u64, crash_ms: u64, down_ms: u64) -> RunConfig {
    let mut cfg = RunConfig::new(n, seed);
    cfg.workload = WorkloadSpec::uniform_mesh(SimDuration::from_millis(4));
    cfg.checkpoint_interval = SimDuration::from_millis(250);
    cfg.workload_duration = SimDuration::from_millis(crash_ms + down_ms + 1_500);
    cfg.state_bytes = 128 * 1024;
    cfg.faults = FaultPlan::single(
        ProcessId(1),
        SimTime::from_millis(crash_ms),
        SimDuration::from_millis(down_ms),
    );
    cfg.stop_on_crash = false; // ride through the failure
    cfg
}

#[test]
fn system_recovers_and_keeps_checkpointing() {
    let r = run(&Algo::ocpt(), recovery_cfg(5, 2024, 900, 60));
    assert!(r.protocol_error.is_none(), "{:?}", r.protocol_error);
    assert_eq!(r.counters.get("recovery.performed"), 1);
    // The run continued past the crash: new rounds completed after the
    // rollback (the fresh observation epoch contains them).
    let obs = r.observer.as_ref().unwrap();
    let post_rounds = obs.complete_csns();
    assert!(!post_rounds.is_empty(), "no checkpoint round completed after recovery");
    // And every one of them is consistent.
    for csn in post_rounds {
        assert!(obs.judge(csn).unwrap().is_consistent(), "post-recovery S_{csn} inconsistent");
        assert_eq!(obs.vclock_consistent(csn), Some(true));
    }
}

#[test]
fn rollback_erases_post_line_checkpoints() {
    let r = run(&Algo::ocpt(), recovery_cfg(5, 31, 900, 60));
    assert!(r.protocol_error.is_none());
    // The final recovery line can only contain rounds from before the
    // crash (≤ invalidation line) or re-executed afterwards; the store
    // must never hold two generations of the same sequence number — the
    // absence of duplicate-put panics during the run is the proof, and
    // the line must be monotone w.r.t. completed rounds.
    assert!(r.recovery_line > 0);
    assert!(r.store.get(ProcessId(1), r.recovery_line).is_some());
}

#[test]
fn in_transit_messages_resent_from_logs() {
    // Dense traffic right up to the crash makes in-transit messages across
    // the recovery line very likely.
    let mut found = false;
    for seed in [7u64, 8, 9, 10, 11] {
        let r = run(&Algo::ocpt(), recovery_cfg(6, seed, 700, 40));
        assert!(r.protocol_error.is_none());
        if r.counters.get("recovery.resent_msgs") > 0 {
            found = true;
            break;
        }
    }
    assert!(found, "no seed produced a resent in-transit message");
}

#[test]
fn recovered_run_matches_restored_states() {
    // The app states after recovery must evolve *from* the restored
    // states: every post-recovery checkpoint's restored state verifies
    // against the driver's ground truth, proving the rollback actually
    // rewound the application.
    let r = run(&Algo::ocpt(), recovery_cfg(4, 55, 800, 50));
    assert!(r.protocol_error.is_none());
    let line = r.recovery_line;
    if line > 0 && r.cut_states.contains_key(&(0, line)) {
        let v = ocpt::harness::verify_restored_states(&r, line).unwrap();
        assert_eq!(v, 4);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Ride-through recovery never produces protocol errors or
    /// inconsistent post-recovery checkpoints, across crash times & seeds.
    #[test]
    fn live_recovery_invariants(
        seed in any::<u64>(),
        crash_ms in 400u64..1_200,
        n in 3usize..7,
    ) {
        let r = run(&Algo::ocpt(), recovery_cfg(n, seed, crash_ms, 50));
        prop_assert!(r.protocol_error.is_none(), "{:?}", r.protocol_error);
        prop_assert_eq!(r.counters.get("recovery.performed"), 1);
        let obs = r.observer.as_ref().unwrap();
        for csn in obs.complete_csns() {
            prop_assert!(obs.judge(csn).unwrap().is_consistent());
        }
        // Theorem 1 still holds across the epoch boundary: every tentative
        // checkpoint taken after recovery is finalized.
        // (Pre-crash tentatives of the victim died with it — allowed.)
    }
}

/// Baselines refuse live recovery explicitly rather than continuing with
/// silently wrong state.
#[test]
fn baselines_reject_live_recovery() {
    let mut cfg = recovery_cfg(4, 1, 600, 50);
    cfg.observe = true;
    let r = run(&Algo::ChandyLamport, cfg);
    assert!(
        r.protocol_error.as_deref().is_some_and(|e| e.contains("not supported")),
        "expected unsupported-recovery error, got {:?}",
        r.protocol_error
    );
}
