//! Paper-conformance checks that don't fit the other suites: the exact
//! statements the text makes about the algorithm's externally visible
//! behaviour, tested at the whole-system level.

use ocpt::prelude::*;

fn cfg(n: usize, seed: u64) -> RunConfig {
    let mut c = RunConfig::new(n, seed);
    c.workload = WorkloadSpec::uniform_mesh(SimDuration::from_millis(3));
    c.checkpoint_interval = SimDuration::from_millis(250);
    c.workload_duration = SimDuration::from_millis(1_500);
    c.state_bytes = 128 * 1024;
    c
}

/// §1: "if each process is required to take checkpoints once in every time
/// interval of t seconds, no process takes more than one checkpoint in any
/// time interval of t seconds."
#[test]
fn at_most_one_checkpoint_per_interval_per_process() {
    let mut c = cfg(6, 21);
    c.trace = true;
    let r = run_checked(&Algo::ocpt(), c);
    for pid in ProcessId::all(6) {
        let mut times: Vec<SimTime> = r
            .trace
            .for_process(pid)
            .filter(|e| e.kind == ocpt::sim::TraceKind::TentativeCkpt)
            .map(|e| e.at)
            .collect();
        times.sort();
        for w in times.windows(2) {
            let gap = w[1] - w[0];
            assert!(
                gap >= SimDuration::from_millis(125),
                "{pid} took two tentative checkpoints {gap} apart"
            );
        }
    }
}

/// §3.4: sequence numbers are assigned "one more than that assigned to its
/// previous checkpoint" — finalized rounds are gap-free 1..=R.
#[test]
fn sequence_numbers_are_dense() {
    let r = run_checked(&Algo::ocpt(), cfg(5, 22));
    let obs = r.observer.as_ref().unwrap();
    let complete = obs.complete_csns();
    assert!(!complete.is_empty());
    for (i, csn) in complete.iter().enumerate() {
        assert_eq!(*csn, i as u64 + 1, "gap in finalized sequence numbers");
    }
    for pid in ProcessId::all(5) {
        let ckpts = obs.checkpoints_of(pid);
        for (i, (csn, _)) in ckpts.iter().enumerate() {
            assert_eq!(*csn, i as u64 + 1, "{pid} has a csn gap");
        }
    }
}

/// §3.2: "a process is not allowed to initiate a new consistent global
/// checkpoint until it finalizes its current tentative checkpoint" — at
/// every instant, tentative counts never exceed finalized + 1 per process.
#[test]
fn no_overlapping_tentative_checkpoints() {
    let r = run_checked(&Algo::ocpt(), cfg(5, 23));
    // Counter-level invariant over the whole run: each tentative checkpoint
    // is matched by exactly one finalization.
    assert_eq!(r.counters.get("ckpt.tentative"), r.counters.get("ckpt.finalized"));
}

/// §2.1: "Channels need not be FIFO" — the algorithm stays correct under
/// aggressively reordering channels.
#[test]
fn correct_under_heavy_reordering() {
    let mut c = cfg(5, 24);
    c.sim = c.sim.with_fifo(false).with_delay(DelayModel::Uniform(
        SimDuration::from_micros(10),
        SimDuration::from_millis(20), // 2000× spread → massive reordering
    ));
    let r = run_checked(&Algo::ocpt(), c);
    assert!(r.complete_rounds >= 2);
    assert!(r.verify_consistency().unwrap() >= 2);
}

/// §2.1 again, but with near-zero delays (instant network): degenerate
/// timing must not break the case analysis.
#[test]
fn correct_under_instant_network() {
    let mut c = cfg(4, 25);
    c.sim = c.sim.with_delay(DelayModel::Fixed(SimDuration::from_nanos(1)));
    let r = run_checked(&Algo::ocpt(), c);
    assert!(r.complete_rounds >= 2);
}

/// Two processes — the smallest legal system; every receive is from "the
/// rest of the system", so finalizations collapse to single exchanges.
#[test]
fn minimal_two_process_system() {
    let r = run_checked(&Algo::ocpt(), cfg(2, 26));
    assert!(r.complete_rounds >= 2);
    assert_eq!(r.counters.get("ckpt.tentative"), r.counters.get("ckpt.finalized"));
}

/// A large system: N = 64 with scaled state still collects consistent
/// rounds and keeps the piggyback under the dense 9 + ⌈64/8⌉ = 17-byte
/// formula — the adaptive encoding ships sparse tentSets for less.
#[test]
fn large_system_n64() {
    let mut c = cfg(64, 27);
    c.workload = WorkloadSpec::uniform_mesh(SimDuration::from_millis(8));
    c.checkpoint_interval = SimDuration::from_millis(500);
    c.workload_duration = SimDuration::from_millis(1_500);
    c.state_bytes = 64 * 1024;
    let r = run_checked(&Algo::ocpt(), c);
    assert!(r.complete_rounds >= 1);
    let per_msg = r.piggyback_bytes / r.app_messages;
    assert!((13..=17).contains(&per_msg), "adaptive piggyback out of range: {per_msg}");
}

/// The recovery line never exceeds the least finalized round and catches
/// up once writes drain — durability lags the decision by bounded time.
#[test]
fn recovery_line_trails_then_catches_up() {
    let r = run_checked(&Algo::ocpt(), cfg(5, 28));
    // After quiescence (runner drains storage), the line equals the number
    // of globally completed rounds.
    assert_eq!(r.recovery_line, r.complete_rounds);
}
