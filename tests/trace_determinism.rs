//! The flight recorder's core contract: a recorded trace is a pure
//! function of `(configuration, seed)`. The JSONL bytes must be
//! identical whichever worker thread ran the job (`--jobs 1` vs
//! `--jobs N`), and under either scheduler kernel (timing wheel vs
//! reference heap) — the scheduler is a performance substitution and
//! must not leak into the recorded history. A perturbed trace must be
//! caught by `trace diff` with an exact first-divergence index.

use std::collections::BTreeMap;

use ocpt::harness::experiments::{e3_control_messages, ExpParams};
use ocpt::prelude::*;
use ocpt::telemetry;

fn quick() -> ExpParams {
    ExpParams {
        n: 4,
        seed: 11,
        workload_ms: 800,
        msg_gap: SimDuration::from_millis(4),
        ckpt_interval: SimDuration::from_millis(250),
        state_bytes: 256 * 1024,
    }
}

fn sweep_grid() -> RunGrid {
    e3_control_messages(&[SimDuration::from_millis(3), SimDuration::from_millis(30)], quick())
}

/// Run the sweep with a sink and collect `{filename: bytes}` for every
/// artifact it wrote.
fn record(dir: &std::path::Path, jobs: usize, sched: SchedulerKind) -> BTreeMap<String, String> {
    let g = sweep_grid().with_scheduler(sched);
    let sink = TraceSink::new(dir, "e3").expect("create sink dir");
    g.run_with_sink(&GridOptions { jobs, replicates: 2 }, Some(&sink));
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("read sink dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().into_string().expect("utf-8 filename");
        out.insert(name, std::fs::read_to_string(entry.path()).expect("read artifact"));
    }
    std::fs::remove_dir_all(dir).ok();
    out
}

fn tmp(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ocpt_trace_det_{}_{tag}", std::process::id()))
}

/// Blank out the two fields that legitimately vary with the scheduler
/// kernel: the provenance stamp and the wheel-only `arena_hwm` gauge.
fn normalize_metrics(bytes: &str) -> String {
    let s = bytes.replace("\"scheduler\":\"reference_heap\"", "\"scheduler\":\"wheel\"");
    let Some(start) = s.find("\"arena_hwm\":") else {
        return s;
    };
    let digits = start + "\"arena_hwm\":".len();
    let end =
        s[digits..].find(|c: char| !c.is_ascii_digit()).map(|i| digits + i).unwrap_or(s.len());
    format!("{}0{}", &s[..digits], &s[end..])
}

#[test]
fn trace_bytes_identical_across_jobs_and_schedulers() {
    let baseline = record(&tmp("base"), 1, SchedulerKind::Wheel);
    assert!(!baseline.is_empty(), "sink wrote nothing");
    // Every (cell, replicate) leaves both artifacts.
    let traces = baseline.keys().filter(|k| k.ends_with(".trace.jsonl")).count();
    let metrics = baseline.keys().filter(|k| k.ends_with(".metrics.json")).count();
    assert_eq!(traces, metrics);
    assert_eq!(traces, sweep_grid().cell_count() * 2, "one trace per (cell, replicate)");

    for (tag, jobs, sched) in [
        ("jobs4", 4, SchedulerKind::Wheel),
        ("heap1", 1, SchedulerKind::ReferenceHeap),
        ("heap4", 4, SchedulerKind::ReferenceHeap),
    ] {
        let other = record(&tmp(tag), jobs, sched);
        assert_eq!(
            baseline.keys().collect::<Vec<_>>(),
            other.keys().collect::<Vec<_>>(),
            "{tag}: artifact sets differ"
        );
        for (name, bytes) in &baseline {
            if name.ends_with(".trace.jsonl") {
                // Traces never mention the scheduler: byte-identical.
                assert_eq!(bytes, &other[name], "{tag}: {name} bytes diverged");
            } else {
                // Metrics stamp the scheduler as provenance, and
                // `arena_hwm` is a wheel-internal gauge (the reference
                // heap has no arena and reports 0); everything else must
                // agree bit for bit — including `peak_pending`, which is
                // defined identically for both kernels.
                let norm = normalize_metrics(&other[name]);
                assert_eq!(
                    &normalize_metrics(bytes),
                    &norm,
                    "{tag}: {name} diverged beyond the scheduler stamp"
                );
            }
        }
    }
}

#[test]
fn recorded_traces_are_schema_valid_and_spanful() {
    let arts = record(&tmp("valid"), 2, SchedulerKind::Wheel);
    for (name, bytes) in arts.iter().filter(|(n, _)| n.ends_with(".trace.jsonl")) {
        let f = telemetry::parse_jsonl(bytes).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(!f.recs.is_empty(), "{name}: empty trace");
        let spans = telemetry::derive_spans(&f.recs);
        assert!(
            spans.iter().any(|s| s.kind == telemetry::SpanKind::Checkpoint),
            "{name}: no checkpoint spans"
        );
    }
    for (name, bytes) in arts.iter().filter(|(n, _)| n.ends_with(".metrics.json")) {
        assert!(bytes.starts_with("{\"schema\":\"ocpt-metrics\",\"version\":2,"), "{name}");
        assert!(bytes.ends_with("}\n"), "{name}: not newline-terminated");
    }
}

/// The observatory rides on the same contract: timeline, critical-path,
/// flame and health outputs — human and JSON — are pure functions of the
/// recorded trace, so they must be byte-identical whichever `--jobs`
/// count or scheduler kernel produced it.
#[test]
fn observatory_outputs_identical_across_jobs_and_schedulers() {
    fn observe(arts: &BTreeMap<String, String>) -> BTreeMap<String, String> {
        let mut out = BTreeMap::new();
        for (name, bytes) in arts.iter().filter(|(n, _)| n.ends_with(".trace.jsonl")) {
            let f = telemetry::parse_jsonl(bytes).unwrap_or_else(|e| panic!("{name}: {e}"));
            let t = telemetry::timeline(&f, telemetry::DEFAULT_BUCKETS);
            let c = telemetry::critical_path(&f);
            let h = telemetry::health(&f);
            out.insert(format!("{name}.timeline"), t.render());
            out.insert(format!("{name}.timeline.json"), t.to_json());
            out.insert(format!("{name}.critpath"), c.render());
            out.insert(format!("{name}.flame"), c.to_folded());
            out.insert(format!("{name}.health"), h.render());
            out.insert(format!("{name}.health.json"), h.to_json());
        }
        out
    }
    let baseline = observe(&record(&tmp("obs_base"), 1, SchedulerKind::Wheel));
    assert!(!baseline.is_empty());
    for v in baseline.values() {
        assert!(!v.is_empty());
    }
    for (name, bytes) in baseline.iter().filter(|(n, _)| n.ends_with(".health.json")) {
        assert!(bytes.starts_with("{\"schema\":\"ocpt-health\",\"version\":1,"), "{name}");
    }
    for (tag, jobs, sched) in [
        ("obs_jobs4", 4, SchedulerKind::Wheel),
        ("obs_heap1", 1, SchedulerKind::ReferenceHeap),
        ("obs_heap4", 4, SchedulerKind::ReferenceHeap),
    ] {
        let other = observe(&record(&tmp(tag), jobs, sched));
        assert_eq!(baseline, other, "{tag}: observatory outputs diverged");
    }
}

#[test]
fn metrics_v2_round_trips_through_the_parser() {
    // The schema bump's contract: everything `metrics_json` writes —
    // floats, nested objects, counters — survives a parse and re-render
    // byte for byte, and the new memory-pressure gauges are present.
    fn render(fields: &[(String, telemetry::json::Value)]) -> String {
        use telemetry::json::{Obj, Value};
        let mut o = Obj::new();
        for (k, v) in fields {
            o = match v {
                Value::Str(s) => o.str(k, s),
                Value::UInt(u) => o.u64(k, *u),
                Value::F64(f) => o.f64(k, *f),
                Value::Obj(inner) => o.raw(k, &render(inner)),
                Value::Null => o.raw(k, "null"),
            };
        }
        o.finish()
    }
    let mut cfg = RunConfig::new(4, 29);
    cfg.workload_duration = SimDuration::from_millis(600);
    cfg.checkpoint_interval = SimDuration::from_millis(200);
    cfg.state_bytes = 64 * 1024;
    let m = run_checked(&Algo::ocpt(), cfg).metrics_json();
    let fields = telemetry::json::parse_object(m.trim_end()).expect("metrics v2 parses");
    let get = |k: &str| {
        fields.iter().find(|(n, _)| n == k).map(|(_, v)| v).unwrap_or_else(|| panic!("no {k}"))
    };
    assert_eq!(get("version").as_u64(), Some(2));
    assert!(get("peak_pending").as_u64().expect("peak_pending is an integer") > 0);
    assert!(get("arena_hwm").as_u64().expect("arena_hwm is an integer") > 0, "wheel run has arena");
    assert!(get("storage").get("mean_writers").and_then(|v| v.as_f64()).is_some());
    assert!(get("counters").as_obj().is_some_and(|c| !c.is_empty()));
    assert_eq!(render(&fields) + "\n", m, "parse → re-render must be the identity");
}

#[test]
fn diff_pins_a_perturbed_event() {
    let mut cfg = RunConfig::new(3, 17);
    cfg.workload_duration = SimDuration::from_millis(500);
    cfg.checkpoint_interval = SimDuration::from_millis(200);
    cfg.state_bytes = 64 * 1024;
    cfg.trace = true;
    let r = run_checked(&Algo::ocpt(), cfg);
    let a = telemetry::parse_jsonl(&r.trace_jsonl()).expect("own trace parses");
    let mut b = a.clone();
    let victim = b.recs.len() / 2;
    b.recs[victim].at += 1;
    match telemetry::diff(&a, &b, 3) {
        telemetry::DiffReport::Diverged { index, rendering } => {
            assert_eq!(index, victim, "diff must name the exact perturbed event");
            assert!(rendering.contains("A "), "{rendering}");
            assert!(rendering.contains("B "), "{rendering}");
        }
        other => panic!("expected divergence, got {other:?}"),
    }
    assert!(telemetry::diff(&a, &a.clone(), 3).is_identical());
}
