//! Span derivation over *hierarchical* control traces. The span layer was
//! grown on flat-ring traces; these tests pin that a grouped wave — with
//! its `CK_GRP_DONE` second tier — still folds into the same Round → Wave
//! → Checkpoint shape, both at a hand-sized N and above the Auto
//! threshold (N > 512, where `ControlTopology::Auto` silently shards).

use ocpt::prelude::*;
use ocpt::telemetry::{critical_path, derive_spans, export, Span, SpanKind, TraceMeta};

fn traced_run(n: usize, seed: u64, topology: ControlTopology) -> ocpt::harness::RunResult {
    let mut cfg = RunConfig::new(n, seed);
    cfg.workload =
        WorkloadSpec::uniform_mesh(SimDuration::from_millis(if n > 100 { 150 } else { 120 }));
    cfg.checkpoint_interval = SimDuration::from_millis(200);
    cfg.workload_duration = SimDuration::from_millis(800);
    cfg.state_bytes = 1024;
    cfg.observe = n <= 1_000;
    cfg.trace = true;
    let algo = Algo::Ocpt(OcptConfig { control_topology: topology, ..OcptConfig::default() });
    let r = run(&algo, cfg);
    assert!(r.protocol_error.is_none(), "{:?}", r.protocol_error);
    assert!(r.complete_rounds >= 1, "need at least one complete round");
    r
}

fn spans_of(r: &ocpt::harness::RunResult) -> (ocpt::telemetry::TraceFile, Vec<Span>) {
    let meta = TraceMeta { algo: r.algo.to_string(), n: r.n, seed: r.seed };
    let jsonl = export::to_jsonl(&meta, r.trace.events());
    let f = export::parse_jsonl(&jsonl).expect("recorded trace round-trips");
    let spans = derive_spans(&f.recs);
    (f, spans)
}

/// Every round of a hierarchical trace derives exactly one Wave child,
/// and every `ctrl.ck_grp_done` event lands inside its round's wave
/// window — the two-tier report is part of the wave, not a stray.
fn assert_hierarchical_shape(f: &ocpt::telemetry::TraceFile, spans: &[Span]) {
    let rounds: Vec<(usize, &Span)> =
        spans.iter().enumerate().filter(|(_, s)| s.kind == SpanKind::Round).collect();
    assert!(!rounds.is_empty(), "no Round spans derived");
    let mut grp_done_seen = 0u64;
    let mut waved_rounds = 0usize;
    for (i, round) in &rounds {
        let seq = round.seq.expect("rounds carry a seq");
        let waves: Vec<&Span> =
            spans.iter().filter(|s| s.kind == SpanKind::Wave && s.parent == Some(*i)).collect();
        // The initial round (no CK_BGN trigger) legitimately has no wave;
        // every other round gets exactly one.
        assert!(waves.len() <= 1, "round {seq}: more than one wave child");
        if let Some(wave) = waves.first() {
            waved_rounds += 1;
            assert!(
                wave.start >= round.start && wave.end <= round.end,
                "round {seq}: wave escapes"
            );
            for rec in f.recs.iter().filter(|r| r.code == "ctrl.ck_grp_done" && r.seq == Some(seq))
            {
                grp_done_seen += 1;
                assert!(
                    rec.at >= wave.start && rec.at <= wave.end,
                    "round {seq}: CK_GRP_DONE at {} outside wave [{}, {}]",
                    rec.at,
                    wave.start,
                    wave.end
                );
            }
        }
        for (ci, c) in spans.iter().enumerate() {
            if c.kind == SpanKind::Checkpoint && c.parent == Some(*i) {
                assert_eq!(c.seq, Some(seq), "checkpoint span {ci} under wrong round");
            }
        }
    }
    assert!(waved_rounds > 0, "no round derived a control wave");
    assert!(grp_done_seen > 0, "hierarchical trace recorded no CK_GRP_DONE events");
}

#[test]
fn grouped_trace_derives_round_wave_checkpoint_tree() {
    let r = traced_run(12, 77, ControlTopology::Grouped { group_size: 4 });
    assert!(r.counters.get("ctrl.grp_done_sent") > 0);
    let (f, spans) = spans_of(&r);
    assert_hierarchical_shape(&f, &spans);
}

/// N = 600 under `Auto { threshold: 512 }` shards into ⌈√600⌉-sized
/// groups; the derived span tree keeps the flat-ring shape and the
/// critical-path analyzer labels the rounds as grouped.
#[test]
fn auto_above_threshold_trace_derives_spans_at_n600() {
    let r = traced_run(600, 21, ControlTopology::Auto { threshold: 512 });
    assert!(r.counters.get("ctrl.grp_done_sent") > 0, "N=600 should shard");
    let (f, spans) = spans_of(&r);
    assert_hierarchical_shape(&f, &spans);

    // The critical-path analyzer sees the same hierarchy: closed rounds
    // are marked grouped and attribute their wave phase.
    let crit = critical_path(&f);
    assert!(!crit.rounds.is_empty());
    let closed: Vec<_> = crit.rounds.iter().filter(|p| p.closed).collect();
    assert!(!closed.is_empty(), "no closed rounds in critical-path report");
    for p in &closed {
        assert_eq!(
            p.total_ns,
            p.trigger_ns + p.wave_ns + p.storage_ns + p.finalize_ns,
            "round {}: phases must partition the round",
            p.seq
        );
    }
    // Waved rounds are labelled grouped (the initial wave-less round is not).
    assert!(
        closed.iter().any(|p| p.hierarchical && p.grp_done > 0),
        "no closed round marked hierarchical"
    );
}
