//! The logging-strategy matrix end to end: the selective strategy is the
//! published protocol *exactly* (trace-, metrics- and wire-byte identical
//! to the default), every strategy restores byte-exact states through its
//! own replay plan under random fault schedules, and the causal variant's
//! frozen cut clocks reproduce Theorem 2 through the second oracle.

use ocpt::harness::{log_recovery_report, verify_restored_states};
use ocpt::prelude::*;
use proptest::prelude::*;

fn base_cfg(n: usize, seed: u64) -> RunConfig {
    let mut cfg = RunConfig::new(n, seed);
    cfg.workload = WorkloadSpec::uniform_mesh(SimDuration::from_millis(3));
    cfg.checkpoint_interval = SimDuration::from_millis(150);
    cfg.workload_duration = SimDuration::from_millis(900);
    cfg.state_bytes = 64 * 1024;
    cfg.trace = true;
    cfg
}

/// The tentpole's ground rule: asking for `LoggingKind::Selective`
/// explicitly is the *same algorithm* as not asking at all — same name,
/// same trace bytes, same metrics bytes — under both scheduler kernels.
#[test]
fn selective_is_byte_identical_to_the_default() {
    for sched in [SchedulerKind::Wheel, SchedulerKind::ReferenceHeap] {
        let mut cfg = base_cfg(6, 2024);
        cfg.scheduler = sched;
        let default = run_checked(&Algo::ocpt(), cfg.clone());
        let explicit = run_checked(&Algo::ocpt_logging(LoggingKind::Selective), cfg);
        assert_eq!(explicit.algo, "ocpt");
        assert_eq!(default.trace_jsonl(), explicit.trace_jsonl(), "{sched:?}: traces diverged");
        assert_eq!(default.metrics_json(), explicit.metrics_json(), "{sched:?}: metrics diverged");
    }
}

/// The strategies may only change what they claim to change. Sender- and
/// receiver-based logging are local decisions: their runs put the same
/// bytes on the wire as selective (clock-free piggybacks). Causal logging
/// piggybacks vector clocks, and pays for it visibly.
#[test]
fn wire_bytes_move_only_for_the_causal_variant() {
    let cfg = base_cfg(6, 77);
    let selective = run_checked(&Algo::ocpt(), cfg.clone());
    for kind in [LoggingKind::SenderBased, LoggingKind::ReceiverBased] {
        let r = run_checked(&Algo::ocpt_logging(kind), cfg.clone());
        assert_eq!(r.piggyback_bytes, selective.piggyback_bytes, "{kind:?}");
        assert_eq!(r.app_messages, selective.app_messages, "{kind:?}");
        // Local decisions show up in the log counters instead.
        assert!(r.counters.get("log.sent_det") + r.counters.get("log.received_det") > 0);
    }
    let causal = run_checked(&Algo::ocpt_logging(LoggingKind::CausalCompressed), cfg);
    assert!(
        causal.piggyback_bytes > selective.piggyback_bytes,
        "causal must pay clock bytes: {} vs {}",
        causal.piggyback_bytes,
        selective.piggyback_bytes
    );
    // Selective logs no determinants at all.
    assert_eq!(selective.counters.get("log.sent_det"), 0);
    assert_eq!(selective.counters.get("log.received_det"), 0);
}

/// Every strategy's recorded history is deterministic: the trace is a pure
/// function of `(config, seed)` under either scheduler kernel.
#[test]
fn strategy_traces_are_scheduler_independent() {
    for kind in LoggingKind::ALL {
        let mut a = base_cfg(5, 4242);
        a.scheduler = SchedulerKind::Wheel;
        let mut b = base_cfg(5, 4242);
        b.scheduler = SchedulerKind::ReferenceHeap;
        let ra = run_checked(&Algo::ocpt_logging(kind), a);
        let rb = run_checked(&Algo::ocpt_logging(kind), b);
        assert_eq!(ra.trace_jsonl(), rb.trace_jsonl(), "{kind:?}: trace depends on scheduler");
    }
}

/// Theorem 2 through the second oracle, for the causal variant: the cut
/// clocks frozen into the durable logs at each finalization must be
/// pairwise concurrent-or-equal for every fully durable `S_k`.
#[test]
fn causal_frozen_cut_clocks_are_pairwise_consistent() {
    let r = run_checked(&Algo::ocpt_logging(LoggingKind::CausalCompressed), base_cfg(6, 909));
    let line = r.recovery_line;
    assert!(line >= 1, "need at least one durable round");
    let mut rounds_checked = 0;
    for csn in 1..=line {
        let mut clocks = Vec::new();
        for pid in ProcessId::all(r.n) {
            let Some(ckpt) = r.store.get(pid, csn) else { break };
            let log = MessageLog::decode(ckpt.log.clone()).expect("durable causal log decodes");
            clocks.push(log.clock().expect("causal logs freeze the cut clock").clone());
        }
        if clocks.len() < r.n {
            continue; // partially GC'd round
        }
        assert!(
            ocpt::causality::pairwise_consistent(&clocks),
            "S_{csn}: frozen cut clocks are causally ordered"
        );
        rounds_checked += 1;
    }
    assert!(rounds_checked >= 1, "no fully durable round to check");
}

fn faulted_cfg(n: usize, seed: u64, gap_us: u64, crash_ms: u64, victim: u32) -> RunConfig {
    let mut cfg = RunConfig::new(n, seed);
    cfg.workload = WorkloadSpec::uniform_mesh(SimDuration::from_micros(gap_us));
    cfg.checkpoint_interval = SimDuration::from_millis(120);
    cfg.workload_duration = SimDuration::from_millis(900);
    cfg.state_bytes = 64 * 1024;
    cfg.faults = FaultPlan::single(
        ProcessId(victim % n as u32),
        SimTime::from_millis(crash_ms),
        SimDuration::from_millis(10),
    );
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Replay equivalence: under random workloads and a random crash,
    /// every strategy's durable `CT + logSet` blobs restore the exact
    /// ground-truth state at the finalization cut — whatever mix of
    /// payload and determinant entries its replay plan used — and the
    /// run survives live recovery without protocol errors.
    #[test]
    fn every_strategy_restores_exact_states_under_faults(
        seed in any::<u64>(),
        n in 3usize..8,
        gap_us in 800u64..8_000,
        crash_ms in 150u64..700,
        victim in any::<u32>(),
        kind_ix in 0usize..4,
    ) {
        let kind = LoggingKind::ALL[kind_ix];
        let r = run(&Algo::ocpt_logging(kind), faulted_cfg(n, seed, gap_us, crash_ms, victim));
        prop_assert!(r.protocol_error.is_none(), "{:?}: {:?}", kind, r.protocol_error);
        if r.recovery_line > 0 {
            verify_restored_states(&r, r.recovery_line).map_err(TestCaseError::fail)?;
        }
    }

    /// The offline recovery analysis never fails on a faulted run, and its
    /// gap accounting respects each strategy's contract: selective and
    /// sender-based leave no replay gaps at all, and only the
    /// receiver-based (determinant-sends) strategy may lose in-transit
    /// messages.
    #[test]
    fn recovery_analysis_matches_strategy_contracts(
        seed in any::<u64>(),
        gap_us in 800u64..6_000,
        crash_ms in 150u64..700,
        kind_ix in 0usize..4,
    ) {
        let kind = LoggingKind::ALL[kind_ix];
        let mut cfg = faulted_cfg(6, seed, gap_us, crash_ms, 3);
        cfg.stop_on_crash = true;
        let r = run(&Algo::ocpt_logging(kind), cfg);
        prop_assert!(r.protocol_error.is_none());
        let rep = log_recovery_report(&r).map_err(TestCaseError::fail)?;
        match kind {
            LoggingKind::Selective => {
                prop_assert_eq!(rep.fetched, 0);
                prop_assert_eq!(rep.orphans, 0);
                prop_assert_eq!(rep.lost_in_transit, 0);
            }
            LoggingKind::SenderBased => {
                prop_assert_eq!(rep.replayed_local, 0, "every receive is a determinant");
                prop_assert_eq!(rep.orphans, 0, "continuous sender payloads cover every fetch");
                prop_assert_eq!(rep.lost_in_transit, 0);
            }
            LoggingKind::ReceiverBased => {
                prop_assert_eq!(rep.fetched, 0, "receiver keeps payloads local");
                prop_assert_eq!(rep.orphans, 0);
            }
            LoggingKind::CausalCompressed => {
                prop_assert_eq!(rep.lost_in_transit, 0, "window sends carry payloads");
            }
        }
    }
}
