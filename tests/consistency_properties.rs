//! The paper's Theorem 2 as an executable property: **every** collected
//! global checkpoint `S_k`, under randomized workloads, topologies, delay
//! models and seeds, must be consistent — judged by two independent
//! oracles (orphan-message analysis over exact event positions, and
//! pairwise vector-clock concurrency), which must also agree with each
//! other. The same harness checks the coordinated baselines, and checks
//! that OCPT's durable blobs restore byte-exact states.

use ocpt::prelude::*;
use proptest::prelude::*;

fn cfg_from(
    n: usize,
    seed: u64,
    gap_us: u64,
    topo: Topology,
    interval_ms: u64,
    fixed_delay: bool,
) -> RunConfig {
    let mut cfg = RunConfig::new(n, seed);
    cfg.workload = WorkloadSpec {
        topology: topo,
        ..WorkloadSpec::uniform_mesh(SimDuration::from_micros(gap_us))
    };
    cfg.checkpoint_interval = SimDuration::from_millis(interval_ms);
    cfg.workload_duration = SimDuration::from_millis(interval_ms * 4);
    cfg.state_bytes = 128 * 1024;
    if fixed_delay {
        cfg.sim = cfg.sim.with_delay(DelayModel::Fixed(SimDuration::from_micros(80)));
    }
    cfg
}

fn topo_strategy() -> impl Strategy<Value = Topology> {
    prop_oneof![
        Just(Topology::FullMesh),
        Just(Topology::Ring),
        Just(Topology::Star),
        Just(Topology::Grid { cols: 3 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Theorem 2 for the paper's algorithm, across the configuration space.
    #[test]
    fn ocpt_every_global_checkpoint_is_consistent(
        n in 2usize..10,
        seed in any::<u64>(),
        gap_us in 500u64..20_000,
        topo in topo_strategy(),
        interval_ms in 40u64..400,
        fixed_delay in any::<bool>(),
    ) {
        let cfg = cfg_from(n, seed, gap_us, topo, interval_ms, fixed_delay);
        let r = run(&Algo::ocpt(), cfg);
        prop_assert!(r.protocol_error.is_none(), "protocol error: {:?}", r.protocol_error);
        let checked = r.verify_consistency().map_err(TestCaseError::fail)?;
        // With traffic and control messages, at least one round must finish.
        prop_assert!(checked >= 1, "no global checkpoint completed");
        // Durable blobs restore byte-exact states on the recovery line.
        if r.recovery_line > 0 {
            ocpt::harness::verify_restored_states(&r, r.recovery_line)
                .map_err(TestCaseError::fail)?;
        }
    }

    /// Theorem 2 for the naive-control variant (A1 path).
    #[test]
    fn ocpt_naive_variant_is_consistent(
        n in 2usize..8,
        seed in any::<u64>(),
        gap_us in 1_000u64..30_000,
    ) {
        let cfg = cfg_from(n, seed, gap_us, Topology::FullMesh, 100, false);
        let r = run(&Algo::ocpt_naive(), cfg);
        prop_assert!(r.protocol_error.is_none());
        r.verify_consistency().map_err(TestCaseError::fail)?;
    }

    /// The coordinated baselines must also only produce consistent lines —
    /// the comparison in the experiments is apples-to-apples.
    #[test]
    fn baselines_are_consistent(
        n in 2usize..8,
        seed in any::<u64>(),
        gap_us in 1_000u64..10_000,
        which in 0usize..4,
    ) {
        let algo = match which {
            0 => Algo::ChandyLamport,
            1 => Algo::KooToueg,
            2 => Algo::Staggered,
            _ => Algo::Cic,
        };
        let cfg = cfg_from(n, seed, gap_us, Topology::FullMesh, 120, false);
        let r = run(&algo, cfg);
        prop_assert!(r.protocol_error.is_none(), "{}: {:?}", r.algo, r.protocol_error);
        r.verify_consistency().map_err(TestCaseError::fail)?;
    }

    /// The two consistency oracles agree on arbitrary (even inconsistent)
    /// checkpoint sets produced by uncoordinated checkpointing.
    #[test]
    fn oracles_agree_on_uncoordinated_lines(
        n in 2usize..8,
        seed in any::<u64>(),
        gap_us in 1_000u64..8_000,
    ) {
        let cfg = cfg_from(n, seed, gap_us, Topology::FullMesh, 80, false);
        let r = run(&Algo::Uncoordinated, cfg);
        prop_assert!(r.protocol_error.is_none());
        let obs = r.observer.as_ref().unwrap();
        for csn in obs.complete_csns() {
            let by_cut = obs.judge(csn).unwrap().is_consistent();
            let by_clock = obs.vclock_consistent(csn).unwrap();
            prop_assert_eq!(by_cut, by_clock, "oracles disagree on S_{}", csn);
        }
    }
}

/// Deterministic regression: a dense mesh at N = 16 collects many rounds,
/// all consistent, with zero impossible-case errors.
#[test]
fn dense_mesh_n16_many_rounds() {
    let mut cfg = RunConfig::new(16, 0xC0FFEE);
    cfg.workload = WorkloadSpec::uniform_mesh(SimDuration::from_millis(2));
    cfg.checkpoint_interval = SimDuration::from_millis(200);
    cfg.workload_duration = SimDuration::from_secs(2);
    cfg.state_bytes = 64 * 1024;
    let r = run_checked(&Algo::ocpt(), cfg);
    assert!(r.complete_rounds >= 5, "rounds = {}", r.complete_rounds);
    assert_eq!(r.verify_consistency().unwrap(), r.complete_rounds);
}

/// In-transit messages across a collected S_k must be covered by sender
/// logs — the "selective message logging" guarantee that makes the
/// recovery line lossless.
#[test]
fn in_transit_messages_covered_by_sender_logs() {
    let mut cfg = RunConfig::new(6, 31337);
    cfg.workload = WorkloadSpec::uniform_mesh(SimDuration::from_millis(3));
    cfg.checkpoint_interval = SimDuration::from_millis(150);
    cfg.workload_duration = SimDuration::from_millis(900);
    cfg.state_bytes = 64 * 1024;
    let r = run_checked(&Algo::ocpt(), cfg);
    let obs = r.observer.as_ref().unwrap();
    let line = r.recovery_line;
    if line == 0 {
        return; // nothing durable yet — nothing to check
    }
    let report = obs.judge(line).expect("line is complete");
    let in_transit: std::collections::HashSet<u64> =
        report.in_transit.iter().map(|t| t.msg.0).collect();
    // Every *sent* entry in a durable log whose message did not land inside
    // the receiver's cut must be one of the oracle's in-transit messages —
    // i.e. the sender-side log contains exactly the material needed to
    // regenerate messages the rollback would otherwise lose.
    let mut checked = 0;
    for pid in ProcessId::all(r.n) {
        let ckpt = r.store.get(pid, line).expect("durable checkpoint on the line");
        let log = MessageLog::decode(ckpt.log.clone()).expect("decodable log");
        let cut = obs.cut_of(line).unwrap();
        for e in log.sent() {
            let received_inside = obs
                .messages()
                .iter()
                .find(|(id, _, _)| id.0 == e.msg_id.0)
                .and_then(|(_, _, recv)| *recv)
                .map(|rv| cut.contains(rv.pid, rv.idx))
                .unwrap_or(false);
            if !received_inside {
                assert!(
                    in_transit.contains(&e.msg_id.0),
                    "logged sent message M{} should be in-transit across S_{line}",
                    e.msg_id.0
                );
                checked += 1;
            }
        }
    }
    // The scenario is tuned so the property is actually exercised.
    let _ = checked;
}
