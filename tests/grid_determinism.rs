//! The experiment grid engine's core contract: parallel execution is an
//! implementation detail. `--jobs N` must produce byte-identical tables
//! (rendered and CSV) to `--jobs 1`, every cell must equal a direct
//! `run_checked` of the same configuration, and replicate seeds must be
//! stable across runs.

use ocpt::harness::experiments::{e3_control_messages, e6_piggyback, ExpParams};
use ocpt::prelude::*;

fn quick() -> ExpParams {
    ExpParams {
        n: 4,
        seed: 11,
        workload_ms: 800,
        msg_gap: SimDuration::from_millis(4),
        ckpt_interval: SimDuration::from_millis(250),
        state_bytes: 256 * 1024,
    }
}

fn sweep_grid() -> RunGrid {
    e3_control_messages(&[SimDuration::from_millis(3), SimDuration::from_millis(30)], quick())
}

#[test]
fn jobs_8_table_is_byte_identical_to_jobs_1() {
    let g = sweep_grid();
    let serial = g.run(&GridOptions { jobs: 1, replicates: 1 });
    let parallel = g.run(&GridOptions { jobs: 8, replicates: 1 });
    assert_eq!(serial.table.render(), parallel.table.render(), "rendered tables differ");
    assert_eq!(serial.table.to_csv(), parallel.table.to_csv(), "CSV output differs");
    assert_eq!(serial.sim_events, parallel.sim_events, "simulations diverged");
    assert_eq!(serial.runs, parallel.runs);
}

#[test]
fn jobs_8_with_replicates_matches_jobs_1() {
    let g = e6_piggyback(&[4, 8], quick());
    let opts = |jobs| GridOptions { jobs, replicates: 3 };
    let serial = g.run(&opts(1));
    let parallel = g.run(&opts(8));
    assert_eq!(serial.table.render(), parallel.table.render());
    assert_eq!(serial.table.to_csv(), parallel.table.to_csv());
    // Replicated columns carry the aggregation suffixes.
    let header = serial.table.to_csv().lines().next().unwrap().to_string();
    for suffix in ["_mean", "_min", "_max", "_sd"] {
        assert!(header.contains(suffix), "missing {suffix} in {header}");
    }
}

#[test]
fn grid_cells_equal_direct_runs() {
    // The grid adds nothing to a run: executing a cell's exact derived
    // configuration by hand yields the same fingerprint the grid saw.
    let g = sweep_grid();
    let (_, events_via_grid) = g.cell_metrics(&GridOptions { jobs: 4, replicates: 1 });
    let mut events_direct = 0;
    for cell in 0..g.cell_count() {
        let cfg = g.replicate_config(cell, 0);
        let algo = if cell % 2 == 0 { Algo::ocpt() } else { Algo::ocpt_naive() };
        events_direct += run_checked(&algo, cfg).sim_events;
    }
    assert_eq!(events_via_grid, events_direct);
}

#[test]
fn wheel_scheduler_output_is_byte_identical_to_reference_heap() {
    // The timing-wheel kernel is a pure performance substitution: the
    // exact experiment output — rendered table, CSV and total event count
    // — must match the original BinaryHeap scheduler bit for bit. (The
    // per-operation equivalence proof is the differential property test
    // in `crates/sim/tests/scheduler_differential.rs`; this pins the
    // end-to-end composition through the full driver.)
    let opts = GridOptions { jobs: 2, replicates: 1 };
    let wheel = sweep_grid().with_scheduler(SchedulerKind::Wheel).run(&opts);
    let heap = sweep_grid().with_scheduler(SchedulerKind::ReferenceHeap).run(&opts);
    assert_eq!(wheel.table.render(), heap.table.render(), "rendered tables differ");
    assert_eq!(wheel.table.to_csv(), heap.table.to_csv(), "CSV output differs");
    assert_eq!(wheel.sim_events, heap.sim_events, "event streams diverged");
}

#[test]
fn wheel_scheduler_matches_reference_heap_under_faults() {
    // Crash purges (`drop_events_for`) and rollback flushes
    // (`clear_except_faults`) are where the two kernels differ most —
    // lazy tombstones vs eager drains — so pin a faulty run end to end,
    // including the new lost-message counter.
    let mut cfg = RunConfig::new(4, 23);
    cfg.workload_duration = SimDuration::from_millis(900);
    cfg.checkpoint_interval = SimDuration::from_millis(200);
    cfg.state_bytes = 128 * 1024;
    cfg.stop_on_crash = false;
    cfg.faults = FaultPlan::single(
        ProcessId(2),
        SimTime::ZERO + SimDuration::from_millis(500),
        SimDuration::from_millis(40),
    );
    let mut wheel_cfg = cfg.clone();
    wheel_cfg.scheduler = SchedulerKind::Wheel;
    let mut heap_cfg = cfg;
    heap_cfg.scheduler = SchedulerKind::ReferenceHeap;
    let w = run_checked(&Algo::ocpt(), wheel_cfg);
    let h = run_checked(&Algo::ocpt(), heap_cfg);
    assert_eq!(w.sim_events, h.sim_events, "event streams diverged");
    assert_eq!(w.makespan, h.makespan);
    assert_eq!(w.app_messages, h.app_messages);
    assert_eq!(w.ctrl_messages, h.ctrl_messages);
    assert_eq!(w.messages_lost_at_crash, h.messages_lost_at_crash);
    assert_eq!(w.recovery_line, h.recovery_line);
}

#[test]
fn work_stealing_is_byte_identical_across_jobs_counts() {
    // The work-stealing pool changes only *which worker* runs a job.
    // Pin that across a spread of worker counts — including jobs=7,
    // which leaves one chunk empty-ish and forces actual steals on a
    // 8-job grid — and include a fault-injection cell, whose crash
    // purge is the heaviest scheduler path a stolen job can exercise.
    let mk = || {
        let mut g =
            RunGrid::new("steal", &["kind"], &[("msgs", ColFmt::Int), ("line", ColFmt::Int)]);
        for (i, label) in ["a", "b", "c", "d"].iter().enumerate() {
            let mut cfg = RunConfig::new(4, 31 + i as u64);
            cfg.workload_duration = SimDuration::from_millis(600);
            cfg.checkpoint_interval = SimDuration::from_millis(200);
            cfg.state_bytes = 128 * 1024;
            g.cell(&[label.to_string()], Algo::ocpt(), cfg, |r| {
                vec![r.app_messages as f64, r.recovery_line as f64]
            });
        }
        let mut cfg = RunConfig::new(4, 59);
        cfg.workload_duration = SimDuration::from_millis(900);
        cfg.checkpoint_interval = SimDuration::from_millis(200);
        cfg.state_bytes = 128 * 1024;
        cfg.stop_on_crash = false;
        cfg.faults = FaultPlan::single(
            ProcessId(1),
            SimTime::ZERO + SimDuration::from_millis(450),
            SimDuration::from_millis(40),
        );
        g.cell(&["crash".to_string()], Algo::ocpt(), cfg, |r| {
            vec![r.app_messages as f64, r.recovery_line as f64]
        });
        g
    };
    let g = mk();
    let baseline = g.run(&GridOptions { jobs: 1, replicates: 2 });
    for jobs in [2, 7] {
        let par = g.run(&GridOptions { jobs, replicates: 2 });
        assert_eq!(baseline.table.render(), par.table.render(), "jobs={jobs} table diverged");
        assert_eq!(baseline.table.to_csv(), par.table.to_csv(), "jobs={jobs} CSV diverged");
        assert_eq!(baseline.sim_events, par.sim_events, "jobs={jobs} event totals diverged");
    }
}

#[test]
fn replicate_seeds_are_stable_and_distinct() {
    let g = sweep_grid();
    let g2 = sweep_grid();
    for cell in 0..g.cell_count() {
        for rep in 0..4 {
            assert_eq!(
                g.replicate_config(cell, rep).sim.seed,
                g2.replicate_config(cell, rep).sim.seed,
                "replicate seeds must be a pure function of (cell, rep)"
            );
        }
        let seeds: Vec<u64> = (0..4).map(|r| g.replicate_config(cell, r).sim.seed).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "replicate seeds collided: {seeds:?}");
    }
}
