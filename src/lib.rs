//! # ocpt — optimistic checkpointing with selective message logging
//!
//! A full reproduction of Jiang & Manivannan, *"An optimistic
//! checkpointing and selective message logging approach for consistent
//! global checkpoint collection in distributed systems"* (IPDPS 2007):
//! the paper's algorithm, every substrate it needs, five comparator
//! algorithms, a deterministic simulator, a threaded runtime and the
//! reconstructed evaluation.
//!
//! This facade crate re-exports the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`protocol`] | `ocpt-core` | the paper's algorithm (sans-io state machine) |
//! | [`sim`] | `ocpt-sim` | deterministic discrete-event kernel |
//! | [`storage`] | `ocpt-storage` | stable-storage contention model & checkpoint store |
//! | [`causality`] | `ocpt-causality` | vector clocks & consistency oracle |
//! | [`baselines`] | `ocpt-baselines` | Chandy–Lamport, Koo–Toueg, staggered, CIC, uncoordinated |
//! | [`harness`] | `ocpt-harness` | driver, workloads, experiments, recovery analysis |
//! | [`telemetry`] | `ocpt-telemetry` | flight recorder: JSONL traces, spans, summary/diff/grep |
//! | [`runtime`] | `ocpt-runtime` | the protocol on real OS threads |
//!
//! ## Quickstart
//!
//! ```
//! use ocpt::prelude::*;
//!
//! // Run the paper's algorithm over a simulated 4-process system and
//! // machine-check Theorem 2 on every collected global checkpoint.
//! let mut cfg = RunConfig::new(4, 7);
//! cfg.workload_duration = SimDuration::from_millis(500);
//! cfg.checkpoint_interval = SimDuration::from_millis(200);
//! cfg.state_bytes = 64 * 1024;
//! let result = run_checked(&Algo::ocpt(), cfg);
//! assert!(result.complete_rounds >= 1);
//! assert!(result.verify_consistency().unwrap() >= 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use ocpt_baselines as baselines;
pub use ocpt_causality as causality;
pub use ocpt_core as protocol;
pub use ocpt_harness as harness;
pub use ocpt_metrics as metrics;
pub use ocpt_runtime as runtime;
pub use ocpt_sim as sim;
pub use ocpt_storage as storage;
pub use ocpt_telemetry as telemetry;

/// The names almost every user of the library wants in scope.
pub mod prelude {
    pub use ocpt_baselines::{CheckpointProtocol, ProtoAction};
    pub use ocpt_core::{
        Action, AppPayload, ControlTopology, Csn, Envelope, FlushPolicy, LoggingKind, MessageLog,
        OcptConfig, OcptProcess, Piggyback, Status, TentSet, WritePolicy,
    };
    pub use ocpt_harness::{
        run, run_checked, Algo, ColFmt, GridOptions, GridOutcome, RunConfig, RunGrid, RunResult,
        TraceSink, WorkloadSpec,
    };
    pub use ocpt_sim::{
        DelayModel, FaultPlan, MsgId, ProcessId, SchedulerKind, SimConfig, SimDuration, SimTime,
        Topology,
    };
}
